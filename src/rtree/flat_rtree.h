#ifndef SKYUP_RTREE_FLAT_RTREE_H_
#define SKYUP_RTREE_FLAT_RTREE_H_

// A cache-friendly snapshot of an R-tree: every node lives in one
// contiguous arena (breadth-first order, so the children of a node are a
// consecutive index range), MBR corners are stored structure-of-arrays
// per dimension, and all leaf point ids (plus their coordinates, SoA) form
// one flat span. Best-first traversal over this layout touches sequential
// memory instead of chasing `unique_ptr` children, and a node's child range
// or leaf range is directly a `SoaView` the batched dominance kernels
// (core/dominance_batch.h) can cull four lanes at a time.
//
// The arena's *shape* is immutable — dynamic inserts stay on the pointer
// `RTree`; rebuild a `FlatRTree` (cheap, one BFS pass) to add points — but
// the structure supports in-place deletes via per-slot tombstones:
// `Erase(row)` marks the slot dead, decrements live counts along the
// leaf-to-root path, and re-tightens (condenses) every ancestor MBR whose
// union shrank, so live-node MBRs stay *exact* unions of their live
// content. That tightness is what keeps the serving layer's box
// lower-bound prune sound under deletes (src/serve/query.cc), and
// `Validate()` proves it. Dead nodes (live_count == 0) keep their stale
// MBRs and are skipped by traversals. DESIGN.md discusses the trade-off.

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/dominance_batch.h"
#include "core/point.h"
#include "rtree/mbr.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

class FlatRTree {
 public:
  /// Flattens an existing (possibly dynamically built) pointer tree. Child
  /// order is preserved exactly, so best-first traversals of the flat and
  /// pointer forms push entries in the same sequence and return
  /// bit-identical results.
  static FlatRTree FromTree(const RTree& tree);

  /// STR bulk load + flatten in one step (the common construction for
  /// static query workloads).
  static Result<FlatRTree> BulkLoad(const Dataset& dataset,
                                    RTreeOptions options = {});

  /// `BulkLoad` for the serving rebuild path (src/serve/rebuilder.cc):
  /// identical for non-empty datasets, but an *empty* dataset — legal
  /// while a live table has everything erased — yields an empty index
  /// bound to `dataset` instead of an error.
  static Result<FlatRTree> BulkLoadSnapshot(const Dataset& dataset,
                                            RTreeOptions options = {});

  FlatRTree() = default;
  FlatRTree(FlatRTree&&) = default;
  FlatRTree& operator=(FlatRTree&&) = default;
  FlatRTree& operator=(const FlatRTree&) = delete;

  /// Deep copy of the arena (including tombstone state) re-bound to
  /// `dataset`, which must hold the same rows this index was built over —
  /// typically a clone of the original dataset (src/serve patch-publish).
  FlatRTree Clone(const Dataset* dataset) const {
    FlatRTree copy(*this);
    copy.dataset_ = dataset;
    return copy;
  }

  size_t dims() const { return dims_; }
  /// Number of indexed slots, dead or alive.
  size_t size() const { return point_ids_.size(); }
  bool empty() const { return point_ids_.empty(); }
  size_t node_count() const { return begin_.size(); }
  const Dataset& dataset() const { return *dataset_; }

  /// Number of indexed points still alive.
  size_t live_size() const { return empty() ? 0 : live_count_[kRoot]; }
  /// Number of erased (tombstoned) slots.
  size_t tombstones() const { return tombstones_; }
  bool has_tombstones() const { return tombstones_ != 0; }

  /// Tombstones a point by its dataset row. Marks the slot dead,
  /// propagates live-count decrements leaf-to-root, and re-tightens every
  /// ancestor MBR whose union over live content shrank (both SoA/AoS
  /// mirrors and the best-first key). O(height * fanout * dims). Returns
  /// false — and changes nothing — if `row` is out of range, was never
  /// indexed, or is already dead.
  bool Erase(PointId row);

  /// Liveness of leaf slot `j` (same index space as `point_ids()`).
  bool slot_alive(uint32_t j) const { return slot_live_[j] != 0; }
  /// Liveness of dataset row `row` (false when not indexed).
  bool row_alive(PointId row) const {
    if (row < 0 || static_cast<size_t>(row) >= slot_of_row_.size()) {
      return false;
    }
    const uint32_t j = slot_of_row_[static_cast<size_t>(row)];
    return j != kNoSlot && slot_live_[j] != 0;
  }
  /// Number of live points under node `n`'s subtree (0 = dead node,
  /// skipped by traversals).
  uint32_t node_live_count(uint32_t n) const { return live_count_[n]; }

  /// The root is always node 0 of a non-empty tree.
  static constexpr uint32_t kRoot = 0;
  /// Sentinels: the root's parent link / an unindexed dataset row.
  static constexpr uint32_t kNoParent = UINT32_MAX;
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  bool is_leaf(uint32_t n) const { return level_[n] == 0; }
  int32_t level(uint32_t n) const { return level_[n]; }

  /// Child node index range [child_begin, child_end) of an internal node;
  /// children are consecutive in the arena.
  uint32_t child_begin(uint32_t n) const { return begin_[n]; }
  uint32_t child_end(uint32_t n) const { return end_[n]; }

  /// Leaf slot range [point_begin, point_end) into `point_ids()`.
  uint32_t point_begin(uint32_t n) const { return begin_[n]; }
  uint32_t point_end(uint32_t n) const { return end_[n]; }
  const PointId* point_ids() const { return point_ids_.data(); }

  /// MBR corners of node `n`, contiguous per node (AoS mirror).
  const double* min_corner(uint32_t n) const {
    return lo_aos_.data() + static_cast<size_t>(n) * dims_;
  }
  const double* max_corner(uint32_t n) const {
    return hi_aos_.data() + static_cast<size_t>(n) * dims_;
  }

  /// Precomputed sum of min-corner coordinates (the best-first key).
  double min_corner_sum(uint32_t n) const { return key_[n]; }

  /// Coordinates of leaf slot `j` (same index space as `point_ids()`),
  /// contiguous per point.
  const double* slot_coords(uint32_t j) const {
    return pt_aos_.data() + static_cast<size_t>(j) * dims_;
  }

  /// SoA view over the MBR *min* corners of the node range [b, e) — the
  /// lanes the batched ADR-overlap / skyline-prune kernels consume when
  /// expanding an internal node.
  SoaView min_corner_block(uint32_t b, uint32_t e) const {
    return SoaView{lo_soa_.data() + b, node_count(),
                   static_cast<size_t>(e - b), dims_};
  }

  /// SoA view over the coordinates of leaf slot range [b, e).
  SoaView point_block(uint32_t b, uint32_t e) const {
    return SoaView{pt_soa_.data() + b, point_ids_.size(),
                   static_cast<size_t>(e - b), dims_};
  }

  /// Root MBR (empty box for an empty or fully-erased tree). For a live
  /// tree this is an *exact* union of the live points — Erase re-tightens
  /// it — which the serving-layer prune depends on.
  Mbr root_mbr() const;

  /// Structural invariants: BFS child contiguity, MBR containment, SoA/AoS
  /// agreement, leaf coordinates matching the dataset, plus the tombstone
  /// layer — live-count sums, parent links, slot/row maps, the tombstone
  /// tally, and live-node MBRs being exact unions of live content.
  Status Validate() const;

 private:
  // Test-only backdoor (tests/flat_rtree_test_peer.h): corrupts arenas to
  // prove Validate() and the paranoid checks actually fire.
  friend class FlatRTreeTestPeer;

  // Copying is reserved for Clone(): a copy that still points at the
  // original dataset aliases mutable state across snapshots.
  FlatRTree(const FlatRTree&) = default;

  // Recomputes node `n`'s MBR as the exact union of its live content
  // (slots for a leaf, live children for an internal node), updating both
  // mirrors and the best-first key. Returns true iff the stored MBR
  // changed or the node just died — i.e. iff the parent's union may have
  // shrunk too.
  bool CondenseMbr(uint32_t n);

  size_t dims_ = 0;
  const Dataset* dataset_ = nullptr;

  // Per node, BFS order. `begin_`/`end_` are child node indices for
  // internal nodes and leaf slot indices for leaves.
  std::vector<int32_t> level_;
  std::vector<uint32_t> begin_;
  std::vector<uint32_t> end_;
  std::vector<double> lo_soa_;  // [d * node_count + n]
  std::vector<double> hi_soa_;
  std::vector<double> lo_aos_;  // [n * dims + d]
  std::vector<double> hi_aos_;
  std::vector<double> key_;

  // Leaf slots, in leaf BFS order.
  std::vector<PointId> point_ids_;
  std::vector<double> pt_soa_;  // [d * size + j]
  std::vector<double> pt_aos_;  // [j * dims + d]

  // Tombstone layer. `slot_live_` is 1/0 per leaf slot; `live_count_` is
  // the number of live points under each node's subtree; `parent_` links
  // each node upward (kNoParent at the root) so Erase can walk the
  // condense path without a search; `leaf_of_slot_` maps a slot to its
  // leaf; `slot_of_row_` maps a dataset row to its slot (kNoSlot when the
  // row is not indexed).
  std::vector<uint8_t> slot_live_;
  std::vector<uint32_t> live_count_;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> leaf_of_slot_;
  std::vector<uint32_t> slot_of_row_;
  size_t tombstones_ = 0;
};

}  // namespace skyup

#endif  // SKYUP_RTREE_FLAT_RTREE_H_
