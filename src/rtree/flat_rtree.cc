#include "rtree/flat_rtree.h"

#include <algorithm>
#include <array>
#include <deque>
#include <limits>
#include <string>

#include "util/logging.h"

namespace skyup {

FlatRTree FlatRTree::FromTree(const RTree& tree) {
  FlatRTree flat;
  flat.dims_ = tree.dataset().dims();
  flat.dataset_ = &tree.dataset();
  if (tree.empty() || tree.root() == nullptr) return flat;

  // Pass 1: BFS to assign arena indices — children of a node become a
  // consecutive run, in the pointer tree's child order.
  std::deque<const RTreeNode*> order;
  order.push_back(tree.root());
  std::vector<const RTreeNode*> nodes;
  while (!order.empty()) {
    const RTreeNode* node = order.front();
    order.pop_front();
    nodes.push_back(node);
    for (const auto& child : node->children) order.push_back(child.get());
  }

  const size_t n = nodes.size();
  const size_t dims = flat.dims_;
  flat.level_.resize(n);
  flat.begin_.resize(n);
  flat.end_.resize(n);
  flat.lo_soa_.resize(dims * n);
  flat.hi_soa_.resize(dims * n);
  flat.lo_aos_.resize(n * dims);
  flat.hi_aos_.resize(n * dims);
  flat.key_.resize(n);
  flat.parent_.assign(n, kNoParent);
  flat.live_count_.assign(n, 0);
  flat.point_ids_.reserve(tree.size());
  flat.leaf_of_slot_.reserve(tree.size());

  // Pass 2: fill the arena. BFS index arithmetic: the children of nodes[i]
  // start right after every child of nodes[0..i).
  uint32_t next_child = 1;
  for (size_t i = 0; i < n; ++i) {
    const RTreeNode* node = nodes[i];
    flat.level_[i] = node->level;
    const double* lo = node->mbr.min_data();
    const double* hi = node->mbr.max_data();
    for (size_t d = 0; d < dims; ++d) {
      flat.lo_soa_[d * n + i] = lo[d];
      flat.hi_soa_[d * n + i] = hi[d];
      flat.lo_aos_[i * dims + d] = lo[d];
      flat.hi_aos_[i * dims + d] = hi[d];
    }
    flat.key_[i] = node->mbr.MinCornerSum();
    if (node->is_leaf()) {
      flat.begin_[i] = static_cast<uint32_t>(flat.point_ids_.size());
      for (PointId id : node->points) {
        flat.point_ids_.push_back(id);
        flat.leaf_of_slot_.push_back(static_cast<uint32_t>(i));
      }
      flat.end_[i] = static_cast<uint32_t>(flat.point_ids_.size());
    } else {
      flat.begin_[i] = next_child;
      next_child += static_cast<uint32_t>(node->children.size());
      flat.end_[i] = next_child;
      for (uint32_t c = flat.begin_[i]; c < flat.end_[i]; ++c) {
        flat.parent_[c] = static_cast<uint32_t>(i);
      }
    }
  }

  // Every arena slot except the root must have been claimed as exactly one
  // node's child run — the BFS index arithmetic above depends on it.
  SKYUP_CHECK(next_child == static_cast<uint32_t>(n))
      << "flat arena child runs cover " << next_child << " of " << n
      << " nodes";

  const size_t p = flat.point_ids_.size();
  flat.pt_soa_.resize(dims * p);
  flat.pt_aos_.resize(p * dims);
  flat.slot_live_.assign(p, 1);
  flat.slot_of_row_.assign(flat.dataset_->size(), kNoSlot);
  for (size_t j = 0; j < p; ++j) {
    const double* coords = flat.dataset_->data(flat.point_ids_[j]);
    for (size_t d = 0; d < dims; ++d) {
      flat.pt_soa_[d * p + j] = coords[d];
      flat.pt_aos_[j * dims + d] = coords[d];
    }
    flat.slot_of_row_[static_cast<size_t>(flat.point_ids_[j])] =
        static_cast<uint32_t>(j);
  }

  // Live counts bottom-up; BFS order guarantees children have larger
  // indices than their parent, so one reverse sweep suffices.
  for (size_t i = n; i-- > 0;) {
    if (flat.level_[i] == 0) {
      flat.live_count_[i] = flat.end_[i] - flat.begin_[i];
    } else {
      uint32_t sum = 0;
      for (uint32_t c = flat.begin_[i]; c < flat.end_[i]; ++c) {
        sum += flat.live_count_[c];
      }
      flat.live_count_[i] = sum;
    }
  }
  SKYUP_PARANOID_OK(flat.Validate());
  return flat;
}

bool FlatRTree::CondenseMbr(uint32_t node) {
  // A node whose last live descendant just died keeps its stale MBR (no
  // live content to tighten over); traversals skip it via live_count == 0.
  // Report "changed" so the parent still re-unions without it.
  if (live_count_[node] == 0) return true;
  std::array<double, kMaxDims> lo;
  std::array<double, kMaxDims> hi;
  for (size_t d = 0; d < dims_; ++d) {
    lo[d] = std::numeric_limits<double>::infinity();
    hi[d] = -std::numeric_limits<double>::infinity();
  }
  if (is_leaf(node)) {
    for (uint32_t j = point_begin(node); j < point_end(node); ++j) {
      if (slot_live_[j] == 0) continue;
      const double* c = slot_coords(j);
      for (size_t d = 0; d < dims_; ++d) {
        lo[d] = std::min(lo[d], c[d]);
        hi[d] = std::max(hi[d], c[d]);
      }
    }
  } else {
    for (uint32_t c = child_begin(node); c < child_end(node); ++c) {
      if (live_count_[c] == 0) continue;
      for (size_t d = 0; d < dims_; ++d) {
        lo[d] = std::min(lo[d], min_corner(c)[d]);
        hi[d] = std::max(hi[d], max_corner(c)[d]);
      }
    }
  }
  bool changed = false;
  for (size_t d = 0; d < dims_; ++d) {
    if (lo_aos_[node * dims_ + d] != lo[d] ||
        hi_aos_[node * dims_ + d] != hi[d]) {
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  const size_t n = node_count();
  double key = 0.0;
  for (size_t d = 0; d < dims_; ++d) {
    lo_aos_[node * dims_ + d] = lo[d];
    hi_aos_[node * dims_ + d] = hi[d];
    lo_soa_[d * n + node] = lo[d];
    hi_soa_[d * n + node] = hi[d];
    key += lo[d];
  }
  key_[node] = key;
  return true;
}

bool FlatRTree::Erase(PointId row) {
  if (row < 0 || static_cast<size_t>(row) >= slot_of_row_.size()) {
    return false;
  }
  const uint32_t slot = slot_of_row_[static_cast<size_t>(row)];
  if (slot == kNoSlot || slot_live_[slot] == 0) return false;
  slot_live_[slot] = 0;
  ++tombstones_;
  // Walk the condense path. Live counts decrement all the way to the
  // root; MBR re-tightening stops early once an ancestor's union is
  // unchanged (the dead point was interior there, so it is interior in
  // every ancestor above too).
  bool shrink = true;
  for (uint32_t node = leaf_of_slot_[slot];;) {
    SKYUP_DCHECK(live_count_[node] > 0);
    --live_count_[node];
    if (shrink) shrink = CondenseMbr(node);
    const uint32_t up = parent_[node];
    if (up == kNoParent) break;
    node = up;
  }
  return true;
}

Result<FlatRTree> FlatRTree::BulkLoad(const Dataset& dataset,
                                      RTreeOptions options) {
  Result<RTree> tree = RTree::BulkLoad(dataset, options);
  if (!tree.ok()) return tree.status();
  // The pointer tree is a scaffold here; FromTree copies everything the
  // flat form needs, except the dataset it references.
  return FromTree(tree.value());
}

Result<FlatRTree> FlatRTree::BulkLoadSnapshot(const Dataset& dataset,
                                              RTreeOptions options) {
  if (dataset.empty()) {
    // A serving snapshot may legitimately hold zero competitors (every P
    // row erased, none inserted yet). The empty flat index answers every
    // probe with "no dominators", which is the right answer; it still
    // binds dims/dataset so traversal entry points have a valid view.
    FlatRTree flat;
    flat.dims_ = dataset.dims();
    flat.dataset_ = &dataset;
    return flat;
  }
  return BulkLoad(dataset, options);
}

Mbr FlatRTree::root_mbr() const {
  // A fully-erased tree keeps a stale root box; report it as empty so
  // callers (e.g. the serve prune) never trust a box over zero points.
  if (empty() || live_count_[kRoot] == 0) return Mbr(dims_);
  return Mbr::FromCorners(min_corner(kRoot), max_corner(kRoot), dims_);
}

Status FlatRTree::Validate() const {
  if (empty()) {
    if (node_count() != 0) {
      return Status::Internal("empty flat tree has nodes");
    }
    return Status::OK();
  }
  const size_t n = node_count();
  const size_t p = point_ids_.size();
  // `slot_of_row_` covers the dataset rows that existed at build time; the
  // dataset may legitimately have grown since (appended rows are simply
  // not indexed), so only an *oversized* map is corrupt.
  if (slot_live_.size() != p || leaf_of_slot_.size() != p ||
      live_count_.size() != n || parent_.size() != n ||
      slot_of_row_.size() > dataset_->size()) {
    return Status::Internal("tombstone arenas out of shape");
  }
  if (parent_[kRoot] != kNoParent) {
    return Status::Internal("root node has a parent link");
  }
  size_t dead = 0;
  for (uint32_t j = 0; j < p; ++j) {
    if (slot_live_[j] == 0) ++dead;
  }
  if (dead != tombstones_) {
    return Status::Internal("tombstone tally out of sync");
  }
  size_t points_seen = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims_; ++d) {
      if (lo_soa_[d * n + i] != min_corner(i)[d] ||
          hi_soa_[d * n + i] != max_corner(i)[d]) {
        return Status::Internal("SoA/AoS corner mismatch at node " +
                                std::to_string(i));
      }
      if (min_corner(i)[d] > max_corner(i)[d]) {
        return Status::Internal("inverted MBR at node " + std::to_string(i));
      }
    }
    // Recomputed in the same d-ascending order Mbr::MinCornerSum uses, so
    // a correct cache compares exactly equal — no tolerance needed.
    double key = 0.0;
    for (size_t d = 0; d < dims_; ++d) key += min_corner(i)[d];
    if (key_[i] != key) {
      return Status::Internal("stale best-first key at node " +
                              std::to_string(i));
    }
    if (is_leaf(i)) {
      if (point_begin(i) > point_end(i) || point_end(i) > point_ids_.size()) {
        return Status::Internal("leaf range out of bounds at node " +
                                std::to_string(i));
      }
      points_seen += point_end(i) - point_begin(i);
      uint32_t live = 0;
      Mbr tight(dims_);
      for (uint32_t j = point_begin(i); j < point_end(i); ++j) {
        const double* coords = dataset_->data(point_ids_[j]);
        for (size_t d = 0; d < dims_; ++d) {
          if (slot_coords(j)[d] != coords[d] ||
              pt_soa_[d * point_ids_.size() + j] != coords[d]) {
            return Status::Internal("stale leaf coordinates at slot " +
                                    std::to_string(j));
          }
          if (slot_live_[j] != 0 &&
              (coords[d] < min_corner(i)[d] || coords[d] > max_corner(i)[d])) {
            return Status::Internal("leaf point escapes its MBR at slot " +
                                    std::to_string(j));
          }
        }
        if (slot_live_[j] != 0) {
          ++live;
          tight.Expand(coords);
        }
      }
      if (live != live_count_[i]) {
        return Status::Internal("leaf live count out of sync at node " +
                                std::to_string(i));
      }
      // A live leaf's MBR is the *exact* union of its live points (Erase
      // re-tightens); dead leaves keep stale boxes and are exempt.
      if (live != 0) {
        for (size_t d = 0; d < dims_; ++d) {
          if (tight.min(d) != min_corner(i)[d] ||
              tight.max(d) != max_corner(i)[d]) {
            return Status::Internal("MBR not tight over live points at node " +
                                    std::to_string(i));
          }
        }
      }
    } else {
      if (child_begin(i) >= child_end(i) || child_end(i) > n ||
          child_begin(i) <= i) {
        return Status::Internal("child range malformed at node " +
                                std::to_string(i));
      }
      uint32_t live = 0;
      Mbr tight(dims_);
      for (uint32_t c = child_begin(i); c < child_end(i); ++c) {
        if (level_[c] != level_[i] - 1) {
          return Status::Internal("child level skew at node " +
                                  std::to_string(i));
        }
        if (parent_[c] != i) {
          return Status::Internal("parent link wrong at node " +
                                  std::to_string(c));
        }
        if (live_count_[c] == 0) continue;  // dead subtree: stale MBR exempt
        live += live_count_[c];
        for (size_t d = 0; d < dims_; ++d) {
          if (min_corner(c)[d] < min_corner(i)[d] ||
              max_corner(c)[d] > max_corner(i)[d]) {
            return Status::Internal("child MBR escapes parent at node " +
                                    std::to_string(c));
          }
        }
        tight.Expand(Mbr::FromCorners(min_corner(c), max_corner(c), dims_));
      }
      if (live != live_count_[i]) {
        return Status::Internal("internal live count out of sync at node " +
                                std::to_string(i));
      }
      if (live != 0) {
        for (size_t d = 0; d < dims_; ++d) {
          if (tight.min(d) != min_corner(i)[d] ||
              tight.max(d) != max_corner(i)[d]) {
            return Status::Internal("MBR not tight over live points at node " +
                                    std::to_string(i));
          }
        }
      }
    }
  }
  if (points_seen != point_ids_.size()) {
    return Status::Internal("leaf ranges do not tile the point span");
  }
  // Slot/row maps last: the node sweep above reports more specific damage
  // first (stale coordinates, level skew) when an arena is corrupted.
  for (uint32_t j = 0; j < p; ++j) {
    if (leaf_of_slot_[j] >= n || !is_leaf(leaf_of_slot_[j]) ||
        point_begin(leaf_of_slot_[j]) > j ||
        j >= point_end(leaf_of_slot_[j])) {
      return Status::Internal("leaf-of-slot map wrong at slot " +
                              std::to_string(j));
    }
    const PointId row = point_ids_[j];
    if (row < 0 || static_cast<size_t>(row) >= slot_of_row_.size() ||
        slot_of_row_[static_cast<size_t>(row)] != j) {
      return Status::Internal("slot-of-row map wrong at slot " +
                              std::to_string(j));
    }
  }
  return Status::OK();
}

}  // namespace skyup
