#include "rtree/flat_rtree.h"

#include <deque>
#include <string>

#include "util/logging.h"

namespace skyup {

FlatRTree FlatRTree::FromTree(const RTree& tree) {
  FlatRTree flat;
  flat.dims_ = tree.dataset().dims();
  flat.dataset_ = &tree.dataset();
  if (tree.empty() || tree.root() == nullptr) return flat;

  // Pass 1: BFS to assign arena indices — children of a node become a
  // consecutive run, in the pointer tree's child order.
  std::deque<const RTreeNode*> order;
  order.push_back(tree.root());
  std::vector<const RTreeNode*> nodes;
  while (!order.empty()) {
    const RTreeNode* node = order.front();
    order.pop_front();
    nodes.push_back(node);
    for (const auto& child : node->children) order.push_back(child.get());
  }

  const size_t n = nodes.size();
  const size_t dims = flat.dims_;
  flat.level_.resize(n);
  flat.begin_.resize(n);
  flat.end_.resize(n);
  flat.lo_soa_.resize(dims * n);
  flat.hi_soa_.resize(dims * n);
  flat.lo_aos_.resize(n * dims);
  flat.hi_aos_.resize(n * dims);
  flat.key_.resize(n);
  flat.point_ids_.reserve(tree.size());

  // Pass 2: fill the arena. BFS index arithmetic: the children of nodes[i]
  // start right after every child of nodes[0..i).
  uint32_t next_child = 1;
  for (size_t i = 0; i < n; ++i) {
    const RTreeNode* node = nodes[i];
    flat.level_[i] = node->level;
    const double* lo = node->mbr.min_data();
    const double* hi = node->mbr.max_data();
    for (size_t d = 0; d < dims; ++d) {
      flat.lo_soa_[d * n + i] = lo[d];
      flat.hi_soa_[d * n + i] = hi[d];
      flat.lo_aos_[i * dims + d] = lo[d];
      flat.hi_aos_[i * dims + d] = hi[d];
    }
    flat.key_[i] = node->mbr.MinCornerSum();
    if (node->is_leaf()) {
      flat.begin_[i] = static_cast<uint32_t>(flat.point_ids_.size());
      for (PointId id : node->points) flat.point_ids_.push_back(id);
      flat.end_[i] = static_cast<uint32_t>(flat.point_ids_.size());
    } else {
      flat.begin_[i] = next_child;
      next_child += static_cast<uint32_t>(node->children.size());
      flat.end_[i] = next_child;
    }
  }

  // Every arena slot except the root must have been claimed as exactly one
  // node's child run — the BFS index arithmetic above depends on it.
  SKYUP_CHECK(next_child == static_cast<uint32_t>(n))
      << "flat arena child runs cover " << next_child << " of " << n
      << " nodes";

  const size_t p = flat.point_ids_.size();
  flat.pt_soa_.resize(dims * p);
  flat.pt_aos_.resize(p * dims);
  for (size_t j = 0; j < p; ++j) {
    const double* coords = flat.dataset_->data(flat.point_ids_[j]);
    for (size_t d = 0; d < dims; ++d) {
      flat.pt_soa_[d * p + j] = coords[d];
      flat.pt_aos_[j * dims + d] = coords[d];
    }
  }
  SKYUP_PARANOID_OK(flat.Validate());
  return flat;
}

Result<FlatRTree> FlatRTree::BulkLoad(const Dataset& dataset,
                                      RTreeOptions options) {
  Result<RTree> tree = RTree::BulkLoad(dataset, options);
  if (!tree.ok()) return tree.status();
  // The pointer tree is a scaffold here; FromTree copies everything the
  // flat form needs, except the dataset it references.
  return FromTree(tree.value());
}

Result<FlatRTree> FlatRTree::BulkLoadSnapshot(const Dataset& dataset,
                                              RTreeOptions options) {
  if (dataset.empty()) {
    // A serving snapshot may legitimately hold zero competitors (every P
    // row erased, none inserted yet). The empty flat index answers every
    // probe with "no dominators", which is the right answer; it still
    // binds dims/dataset so traversal entry points have a valid view.
    FlatRTree flat;
    flat.dims_ = dataset.dims();
    flat.dataset_ = &dataset;
    return flat;
  }
  return BulkLoad(dataset, options);
}

Mbr FlatRTree::root_mbr() const {
  if (empty()) return Mbr(dims_);
  return Mbr::FromCorners(min_corner(kRoot), max_corner(kRoot), dims_);
}

Status FlatRTree::Validate() const {
  if (empty()) {
    if (node_count() != 0) {
      return Status::Internal("empty flat tree has nodes");
    }
    return Status::OK();
  }
  const size_t n = node_count();
  size_t points_seen = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims_; ++d) {
      if (lo_soa_[d * n + i] != min_corner(i)[d] ||
          hi_soa_[d * n + i] != max_corner(i)[d]) {
        return Status::Internal("SoA/AoS corner mismatch at node " +
                                std::to_string(i));
      }
      if (min_corner(i)[d] > max_corner(i)[d]) {
        return Status::Internal("inverted MBR at node " + std::to_string(i));
      }
    }
    // Recomputed in the same d-ascending order Mbr::MinCornerSum uses, so
    // a correct cache compares exactly equal — no tolerance needed.
    double key = 0.0;
    for (size_t d = 0; d < dims_; ++d) key += min_corner(i)[d];
    if (key_[i] != key) {
      return Status::Internal("stale best-first key at node " +
                              std::to_string(i));
    }
    if (is_leaf(i)) {
      if (point_begin(i) > point_end(i) || point_end(i) > point_ids_.size()) {
        return Status::Internal("leaf range out of bounds at node " +
                                std::to_string(i));
      }
      points_seen += point_end(i) - point_begin(i);
      for (uint32_t j = point_begin(i); j < point_end(i); ++j) {
        const double* coords = dataset_->data(point_ids_[j]);
        for (size_t d = 0; d < dims_; ++d) {
          if (slot_coords(j)[d] != coords[d] ||
              pt_soa_[d * point_ids_.size() + j] != coords[d]) {
            return Status::Internal("stale leaf coordinates at slot " +
                                    std::to_string(j));
          }
          if (coords[d] < min_corner(i)[d] || coords[d] > max_corner(i)[d]) {
            return Status::Internal("leaf point escapes its MBR at slot " +
                                    std::to_string(j));
          }
        }
      }
    } else {
      if (child_begin(i) >= child_end(i) || child_end(i) > n ||
          child_begin(i) <= i) {
        return Status::Internal("child range malformed at node " +
                                std::to_string(i));
      }
      for (uint32_t c = child_begin(i); c < child_end(i); ++c) {
        if (level_[c] != level_[i] - 1) {
          return Status::Internal("child level skew at node " +
                                  std::to_string(i));
        }
        for (size_t d = 0; d < dims_; ++d) {
          if (min_corner(c)[d] < min_corner(i)[d] ||
              max_corner(c)[d] > max_corner(i)[d]) {
            return Status::Internal("child MBR escapes parent at node " +
                                    std::to_string(c));
          }
        }
      }
    }
  }
  if (points_seen != point_ids_.size()) {
    return Status::Internal("leaf ranges do not tile the point span");
  }
  return Status::OK();
}

}  // namespace skyup
