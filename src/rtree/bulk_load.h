#ifndef SKYUP_RTREE_BULK_LOAD_H_
#define SKYUP_RTREE_BULK_LOAD_H_

// Sort-Tile-Recursive bulk loading lives behind RTree::BulkLoad; this header
// only exposes the helper used by tests to inspect the packing parameters.

#include <cstddef>

namespace skyup {

/// Number of vertical slabs STR uses at one recursion level when packing
/// `n` rectangles into pages of `capacity` across `dims_left` remaining
/// sort dimensions: ceil((ceil(n/capacity))^(1/dims_left)).
size_t StrSlabCount(size_t n, size_t capacity, size_t dims_left);

}  // namespace skyup

#endif  // SKYUP_RTREE_BULK_LOAD_H_
