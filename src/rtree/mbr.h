#ifndef SKYUP_RTREE_MBR_H_
#define SKYUP_RTREE_MBR_H_

#include <array>
#include <cstddef>
#include <string>

namespace skyup {

/// Maximum dimensionality supported by the spatial structures. The paper
/// evaluates d in [2, 6]; 16 leaves generous headroom while keeping MBRs
/// inline (no heap allocation per box).
inline constexpr size_t kMaxDims = 16;

/// A minimum bounding (hyper-)rectangle with inline storage.
///
/// A default-constructed or freshly `Reset` box is *empty*: it contains
/// nothing and expanding it by a point yields that point's degenerate box.
class Mbr {
 public:
  /// Constructs an empty box of `dims` dimensions (min=+inf, max=-inf).
  explicit Mbr(size_t dims = 0);

  /// Degenerate box covering exactly one point.
  static Mbr FromPoint(const double* p, size_t dims);

  /// Box spanning two corners; `lo[i] <= hi[i]` is the caller's contract.
  static Mbr FromCorners(const double* lo, const double* hi, size_t dims);

  size_t dims() const { return dims_; }

  /// True if no point has been included yet.
  bool IsEmpty() const;

  /// Restores the empty state, keeping the dimensionality.
  void Reset();

  double min(size_t i) const { return min_[i]; }
  double max(size_t i) const { return max_[i]; }
  const double* min_data() const { return min_.data(); }
  const double* max_data() const { return max_.data(); }

  /// Grows the box to include a point / another box.
  void Expand(const double* p);
  void Expand(const Mbr& other);

  /// True iff the boxes share at least one point (closed intervals).
  bool Intersects(const Mbr& other) const;

  /// True iff point `p` lies inside the box (closed).
  bool Contains(const double* p) const;

  /// True iff `other` lies fully inside this box.
  bool ContainsBox(const Mbr& other) const;

  /// Product of side lengths (0 for an empty box).
  double Area() const;

  /// Sum of side lengths (the "margin"; used by split heuristics).
  double Margin() const;

  /// Area growth needed to also include `other`.
  double Enlargement(const Mbr& other) const;

  /// Area of the intersection with `other`; 0 when disjoint.
  double OverlapArea(const Mbr& other) const;

  /// Sum of min-corner coordinates: the BBS traversal priority ("mindist"
  /// to the origin under the L1 monotone scoring function).
  double MinCornerSum() const;

  /// "[lo .. hi]" rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Mbr& other) const;

 private:
  size_t dims_;
  std::array<double, kMaxDims> min_;
  std::array<double, kMaxDims> max_;
};

}  // namespace skyup

#endif  // SKYUP_RTREE_MBR_H_
