#include "rtree/mbr.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace skyup {

Mbr::Mbr(size_t dims) : dims_(dims) {
  SKYUP_CHECK(dims <= kMaxDims) << "dimensionality " << dims
                                << " exceeds kMaxDims=" << kMaxDims;
  Reset();
}

void Mbr::Reset() {
  min_.fill(std::numeric_limits<double>::infinity());
  max_.fill(-std::numeric_limits<double>::infinity());
}

Mbr Mbr::FromPoint(const double* p, size_t dims) {
  Mbr box(dims);
  box.Expand(p);
  return box;
}

Mbr Mbr::FromCorners(const double* lo, const double* hi, size_t dims) {
  Mbr box(dims);
  for (size_t i = 0; i < dims; ++i) {
    SKYUP_DCHECK(lo[i] <= hi[i]);
    box.min_[i] = lo[i];
    box.max_[i] = hi[i];
  }
  return box;
}

bool Mbr::IsEmpty() const {
  return dims_ == 0 || min_[0] > max_[0];
}

void Mbr::Expand(const double* p) {
  for (size_t i = 0; i < dims_; ++i) {
    min_[i] = std::min(min_[i], p[i]);
    max_[i] = std::max(max_[i], p[i]);
  }
}

void Mbr::Expand(const Mbr& other) {
  SKYUP_DCHECK(dims_ == other.dims_);
  if (other.IsEmpty()) return;
  for (size_t i = 0; i < dims_; ++i) {
    min_[i] = std::min(min_[i], other.min_[i]);
    max_[i] = std::max(max_[i], other.max_[i]);
  }
}

bool Mbr::Intersects(const Mbr& other) const {
  SKYUP_DCHECK(dims_ == other.dims_);
  for (size_t i = 0; i < dims_; ++i) {
    if (min_[i] > other.max_[i] || other.min_[i] > max_[i]) return false;
  }
  return !IsEmpty() && !other.IsEmpty();
}

bool Mbr::Contains(const double* p) const {
  for (size_t i = 0; i < dims_; ++i) {
    if (p[i] < min_[i] || p[i] > max_[i]) return false;
  }
  return true;
}

bool Mbr::ContainsBox(const Mbr& other) const {
  SKYUP_DCHECK(dims_ == other.dims_);
  if (other.IsEmpty()) return true;
  for (size_t i = 0; i < dims_; ++i) {
    if (other.min_[i] < min_[i] || other.max_[i] > max_[i]) return false;
  }
  return true;
}

double Mbr::Area() const {
  if (IsEmpty()) return 0.0;
  double area = 1.0;
  for (size_t i = 0; i < dims_; ++i) area *= max_[i] - min_[i];
  return area;
}

double Mbr::Margin() const {
  if (IsEmpty()) return 0.0;
  double margin = 0.0;
  for (size_t i = 0; i < dims_; ++i) margin += max_[i] - min_[i];
  return margin;
}

double Mbr::Enlargement(const Mbr& other) const {
  Mbr merged = *this;
  merged.Expand(other);
  return merged.Area() - Area();
}

double Mbr::OverlapArea(const Mbr& other) const {
  SKYUP_DCHECK(dims_ == other.dims_);
  double area = 1.0;
  for (size_t i = 0; i < dims_; ++i) {
    const double lo = std::max(min_[i], other.min_[i]);
    const double hi = std::min(max_[i], other.max_[i]);
    if (lo > hi) return 0.0;
    area *= hi - lo;
  }
  return area;
}

double Mbr::MinCornerSum() const {
  double sum = 0.0;
  for (size_t i = 0; i < dims_; ++i) sum += min_[i];
  return sum;
}

std::string Mbr::ToString() const {
  std::ostringstream out;
  out.precision(6);
  out << '[';
  for (size_t i = 0; i < dims_; ++i) {
    if (i > 0) out << ", ";
    out << min_[i];
  }
  out << " .. ";
  for (size_t i = 0; i < dims_; ++i) {
    if (i > 0) out << ", ";
    out << max_[i];
  }
  out << ']';
  return out.str();
}

bool Mbr::operator==(const Mbr& other) const {
  if (dims_ != other.dims_) return false;
  if (IsEmpty() && other.IsEmpty()) return true;
  for (size_t i = 0; i < dims_; ++i) {
    if (min_[i] != other.min_[i] || max_[i] != other.max_[i]) return false;
  }
  return true;
}

}  // namespace skyup
