#ifndef SKYUP_RTREE_RTREE_H_
#define SKYUP_RTREE_RTREE_H_

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/point.h"
#include "rtree/mbr.h"
#include "util/status.h"

namespace skyup {

/// One node of an in-memory R-tree. Leaves (level 0) hold point ids into
/// the indexed `Dataset`; internal nodes hold child nodes. The node's `mbr`
/// always bounds everything below it.
struct RTreeNode {
  Mbr mbr;
  int level = 0;  ///< 0 for leaves; parents are child level + 1.
  std::vector<PointId> points;
  std::vector<std::unique_ptr<RTreeNode>> children;

  bool is_leaf() const { return level == 0; }
  size_t entry_count() const {
    return is_leaf() ? points.size() : children.size();
  }
};

/// Structural statistics reported by `RTree::Stats`.
struct RTreeStats {
  size_t point_count = 0;
  size_t node_count = 0;
  size_t leaf_count = 0;
  size_t height = 0;  ///< number of levels; 1 means the root is a leaf.
};

/// An in-memory R-tree over a `Dataset`.
///
/// Supports STR bulk loading (used to index both `P` and `T` in the paper's
/// experiments) and Guttman-style dynamic insertion with quadratic node
/// splitting. The tree stores point *ids*; coordinates are read from the
/// dataset, which must outlive the tree and must not be resized while the
/// tree references it (inserting into the tree after appending to the
/// dataset is fine).
/// Node-split heuristic used on dynamic-insert overflow.
enum class SplitStrategy {
  /// Guttman's quadratic split: pick the most wasteful seed pair, then
  /// assign entries greedily by enlargement preference.
  kQuadratic,
  /// R*-tree split: choose the split axis by minimal margin sum, then the
  /// distribution along it with minimal overlap (ties: minimal area).
  /// Produces squarer, less overlapping nodes; forced reinsertion is not
  /// implemented (see rtree.cc).
  kRStar,
};

/// Construction parameters of `RTree`. (Defined at namespace scope so the
/// brace-default arguments below are valid in-class — a nested struct with
/// member initializers cannot default-construct inside its encloser.)
struct RTreeOptions {
  /// Maximum entries per node (fanout). Must be >= 2.
  size_t max_entries = 64;
  /// Minimum entries per non-root node; 0 means 40% of `max_entries`.
  size_t min_entries = 0;
  /// Overflow handling for dynamic inserts (bulk loading ignores it).
  SplitStrategy split = SplitStrategy::kQuadratic;
};

class RTree {
 public:
  using Options = RTreeOptions;

  /// Creates an empty tree over `dataset`.
  explicit RTree(const Dataset* dataset, Options options = {});

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Bulk-loads every point of `dataset` with the Sort-Tile-Recursive
  /// algorithm, producing a packed tree. Fails on an empty dataset or
  /// invalid options.
  static Result<RTree> BulkLoad(const Dataset& dataset, Options options = {});

  /// Inserts one point by id (must be a valid dataset row).
  void Insert(PointId id);

  /// Removes one point by id. Underflowing nodes are dissolved and their
  /// surviving points reinserted (condense-tree); MBRs re-tighten along
  /// the deletion path. Returns false if `id` is not in the tree.
  bool Delete(PointId id);

  /// Number of indexed points.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const RTreeNode* root() const { return root_.get(); }
  const Dataset& dataset() const { return *dataset_; }
  const Options& options() const { return options_; }

  /// Appends ids of all points inside `box` (closed) to `out`.
  void RangeQuery(const Mbr& box, std::vector<PointId>* out) const;

  /// Number of points inside `box` without materializing them.
  size_t CountRange(const Mbr& box) const;

  /// Walks the whole tree and checks structural invariants: MBR
  /// containment/tightness, fill factors, uniform leaf depth.
  Status Validate() const;

  RTreeStats Stats() const;

 private:
  friend class StrBulkLoader;

  // Returns the new sibling if `node` was split, nullptr otherwise.
  std::unique_ptr<RTreeNode> InsertRecursive(RTreeNode* node, PointId id,
                                             const double* coords);

  RTreeNode* ChooseSubtree(RTreeNode* node, const Mbr& box) const;

  // Removes `id` from the subtree under `node`; appends points of
  // dissolved (underflowing) descendants to `orphans`. Returns true if the
  // point was found. On return the subtree's MBRs are tight again.
  bool DeleteRecursive(RTreeNode* node, PointId id, const double* coords,
                       std::vector<PointId>* orphans);

  std::unique_ptr<RTreeNode> SplitLeaf(RTreeNode* node);
  std::unique_ptr<RTreeNode> SplitInternal(RTreeNode* node);

  void RecomputeMbr(RTreeNode* node) const;

  size_t min_entries() const;

  const Dataset* dataset_;
  Options options_;
  std::unique_ptr<RTreeNode> root_;
  size_t size_ = 0;
};

}  // namespace skyup

#endif  // SKYUP_RTREE_RTREE_H_
