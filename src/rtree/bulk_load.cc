#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rtree/rtree.h"
#include "util/logging.h"

namespace skyup {

size_t StrSlabCount(size_t n, size_t capacity, size_t dims_left) {
  SKYUP_CHECK(capacity >= 1 && dims_left >= 1);
  const size_t pages = (n + capacity - 1) / capacity;
  if (dims_left == 1) return pages;
  // The tiny bias guards against pow() returning e.g. 4.0000000001 for an
  // exact root, which would otherwise round a 4 up to 5 slabs.
  const double s = std::ceil(
      std::pow(static_cast<double>(pages), 1.0 / static_cast<double>(dims_left)) -
      1e-9);
  return std::max<size_t>(1, static_cast<size_t>(s));
}

namespace {

// Boundaries of `k` near-equal chunks of [0, n): sizes differ by at most 1,
// which keeps every chunk at least half the page capacity (>= min fill).
std::vector<size_t> EqualChunkOffsets(size_t n, size_t k) {
  SKYUP_CHECK(k >= 1 && k <= n);
  std::vector<size_t> offsets;
  offsets.reserve(k + 1);
  const size_t base = n / k;
  const size_t rem = n % k;
  size_t pos = 0;
  offsets.push_back(0);
  for (size_t i = 0; i < k; ++i) {
    pos += base + (i < rem ? 1 : 0);
    offsets.push_back(pos);
  }
  SKYUP_DCHECK(offsets.back() == n);
  return offsets;
}

}  // namespace

/// Builds a packed R-tree with the Sort-Tile-Recursive algorithm of
/// Leutenegger, Edgington, and Lopez: sort by one dimension, cut into
/// slabs, recurse on the remaining dimensions, and pack pages bottom-up.
class StrBulkLoader {
 public:
  StrBulkLoader(const Dataset* dataset, const RTree::Options& options)
      : dataset_(dataset), options_(options), dims_(dataset->dims()) {}

  std::unique_ptr<RTreeNode> Build() {
    std::vector<PointId> ids(dataset_->size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);

    std::vector<std::unique_ptr<RTreeNode>> level;
    TilePoints(ids.begin(), ids.end(), 0, &level);

    while (level.size() > 1) {
      std::vector<std::unique_ptr<RTreeNode>> parents;
      TileNodes(level.begin(), level.end(), 0, &parents);
      level = std::move(parents);
    }
    SKYUP_CHECK(level.size() == 1);
    return std::move(level[0]);
  }

 private:
  using IdIter = std::vector<PointId>::iterator;
  using NodeIter = std::vector<std::unique_ptr<RTreeNode>>::iterator;

  void TilePoints(IdIter begin, IdIter end, size_t dim,
                  std::vector<std::unique_ptr<RTreeNode>>* leaves) {
    const size_t n = static_cast<size_t>(end - begin);
    if (n <= options_.max_entries) {
      auto leaf = std::make_unique<RTreeNode>();
      leaf->level = 0;
      leaf->mbr = Mbr(dims_);
      leaf->points.assign(begin, end);
      for (PointId id : leaf->points) leaf->mbr.Expand(dataset_->data(id));
      leaves->push_back(std::move(leaf));
      return;
    }

    const size_t dims_left = dims_ - dim;
    const Dataset* data = dataset_;
    std::sort(begin, end, [data, dim](PointId a, PointId b) {
      const double va = data->data(a)[dim];
      const double vb = data->data(b)[dim];
      if (va != vb) return va < vb;
      return a < b;
    });

    if (dims_left == 1) {
      // Last dimension: cut directly into near-equal pages.
      const size_t pages = StrSlabCount(n, options_.max_entries, 1);
      const std::vector<size_t> offsets = EqualChunkOffsets(n, pages);
      for (size_t i = 0; i + 1 < offsets.size(); ++i) {
        IdIter lo = begin + static_cast<ptrdiff_t>(offsets[i]);
        IdIter hi = begin + static_cast<ptrdiff_t>(offsets[i + 1]);
        auto leaf = std::make_unique<RTreeNode>();
        leaf->level = 0;
        leaf->mbr = Mbr(dims_);
        leaf->points.assign(lo, hi);
        for (PointId id : leaf->points) leaf->mbr.Expand(dataset_->data(id));
        leaves->push_back(std::move(leaf));
      }
      return;
    }

    const size_t slabs =
        std::min(n, StrSlabCount(n, options_.max_entries, dims_left));
    const std::vector<size_t> offsets = EqualChunkOffsets(n, slabs);
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      TilePoints(begin + static_cast<ptrdiff_t>(offsets[i]),
                 begin + static_cast<ptrdiff_t>(offsets[i + 1]), dim + 1,
                 leaves);
    }
  }

  void TileNodes(NodeIter begin, NodeIter end, size_t dim,
                 std::vector<std::unique_ptr<RTreeNode>>* parents) {
    const size_t n = static_cast<size_t>(end - begin);
    if (n <= options_.max_entries) {
      parents->push_back(MakeParent(begin, end));
      return;
    }

    const size_t dims_left = dims_ - dim;
    std::sort(begin, end,
              [dim](const std::unique_ptr<RTreeNode>& a,
                    const std::unique_ptr<RTreeNode>& b) {
                const double ca = (a->mbr.min(dim) + a->mbr.max(dim)) / 2;
                const double cb = (b->mbr.min(dim) + b->mbr.max(dim)) / 2;
                return ca < cb;
              });

    if (dims_left == 1) {
      const size_t pages = StrSlabCount(n, options_.max_entries, 1);
      const std::vector<size_t> offsets = EqualChunkOffsets(n, pages);
      for (size_t i = 0; i + 1 < offsets.size(); ++i) {
        parents->push_back(
            MakeParent(begin + static_cast<ptrdiff_t>(offsets[i]),
                       begin + static_cast<ptrdiff_t>(offsets[i + 1])));
      }
      return;
    }

    const size_t slabs =
        std::min(n, StrSlabCount(n, options_.max_entries, dims_left));
    const std::vector<size_t> offsets = EqualChunkOffsets(n, slabs);
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      TileNodes(begin + static_cast<ptrdiff_t>(offsets[i]),
                begin + static_cast<ptrdiff_t>(offsets[i + 1]), dim + 1,
                parents);
    }
  }

  std::unique_ptr<RTreeNode> MakeParent(NodeIter begin, NodeIter end) {
    auto parent = std::make_unique<RTreeNode>();
    parent->level = (*begin)->level + 1;
    parent->mbr = Mbr(dims_);
    for (NodeIter it = begin; it != end; ++it) {
      SKYUP_DCHECK((*it)->level == parent->level - 1);
      parent->mbr.Expand((*it)->mbr);
      parent->children.push_back(std::move(*it));
    }
    return parent;
  }

  const Dataset* dataset_;
  const RTree::Options& options_;
  size_t dims_;
};

Result<RTree> RTree::BulkLoad(const Dataset& dataset, Options options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot bulk-load an empty dataset");
  }
  if (options.max_entries < 2) {
    return Status::InvalidArgument("R-tree fanout must be at least 2");
  }
  if (dataset.dims() > kMaxDims) {
    return Status::InvalidArgument("dataset dimensionality exceeds kMaxDims");
  }
  RTree tree(&dataset, options);
  StrBulkLoader loader(&dataset, tree.options_);
  tree.root_ = loader.Build();
  tree.size_ = dataset.size();
  SKYUP_PARANOID_OK(tree.Validate());
  return tree;
}

}  // namespace skyup
