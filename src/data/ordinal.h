#ifndef SKYUP_DATA_ORDINAL_H_
#define SKYUP_DATA_ORDINAL_H_

// Ordinal (categorical) attribute support — the paper's first research
// direction ("extend the techniques to data with a mix of numerical and
// non-numerical domains"). An ordered categorical domain maps to integer
// ranks (0 = most preferred) so it participates in dominance and upgrading
// like any numeric minimize-dimension; `TabulatedCost` prices each level
// so Algorithm 1 can weigh "move up one category" against numeric
// improvements.

#include <memory>
#include <string>
#include <vector>

#include "core/cost_function.h"
#include "util/status.h"

namespace skyup {

/// An ordered categorical domain, e.g. hotel ratings
/// {"5-star", "4-star", ..., "1-star"} listed best first.
///
/// `Rank` embeds a level into the canonical minimize space (best level ->
/// 0.0); `Unrank` maps a (possibly fractional, possibly upgraded) rank back
/// to the best achievable level: an upgrade target of `2 - epsilon` means
/// "strictly better than level 2", i.e. level 1.
class OrdinalScale {
 public:
  /// `levels` ordered from most to least preferred; at least one, all
  /// distinct and non-empty.
  static Result<OrdinalScale> Create(std::vector<std::string> levels);

  size_t size() const { return levels_.size(); }

  /// The embedding rank of `level` (0 = best), or NotFound.
  Result<double> Rank(const std::string& level) const;

  /// The level at integer rank `rank` (must be < size()).
  const std::string& Level(size_t rank) const;

  /// Best achievable level for a continuous (upgraded) rank value:
  /// floor(value), clamped into [0, size()-1].
  const std::string& Unrank(double value) const;

 private:
  explicit OrdinalScale(std::vector<std::string> levels)
      : levels_(std::move(levels)) {}

  std::vector<std::string> levels_;
};

/// An attribute cost function defined by a table of per-rank costs with
/// linear interpolation in between — the natural cost model for an ordinal
/// dimension ("a 5-star build-out costs X, 4-star costs Y, ...").
///
/// Costs must be non-increasing in rank (better levels cost at least as
/// much), preserving the paper's monotonicity assumption. Values beyond
/// the table are clamped to the boundary costs, so upgraded ranks like
/// `-epsilon` stay finite.
class TabulatedCost final : public AttributeCostFunction {
 public:
  /// `costs_by_rank[r]` prices integer rank r; needs >= 2 entries.
  static Result<std::shared_ptr<const TabulatedCost>> Create(
      std::vector<double> costs_by_rank);

  double Cost(double value) const override;
  std::string name() const override;

 private:
  explicit TabulatedCost(std::vector<double> costs)
      : costs_(std::move(costs)) {}

  std::vector<double> costs_;
};

}  // namespace skyup

#endif  // SKYUP_DATA_ORDINAL_H_
