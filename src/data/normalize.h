#ifndef SKYUP_DATA_NORMALIZE_H_
#define SKYUP_DATA_NORMALIZE_H_

#include <vector>

#include "core/dataset.h"
#include "util/status.h"

namespace skyup {

/// Preference direction of one raw attribute.
enum class Direction {
  kMinimize,  ///< smaller raw values are better (weight, price, ...)
  kMaximize,  ///< larger raw values are better (standby time, pixels, ...)
};

/// Per-dimension affine mapping learned by `Normalizer::Fit`.
struct DimScale {
  double lo = 0.0;
  double hi = 1.0;
  Direction direction = Direction::kMinimize;
};

/// Maps raw product attributes into the canonical unit space the library's
/// algorithms expect: every dimension in [0, 1] and minimize-preferred.
///
/// Maximize-preferred dimensions are flipped (`x -> (hi - x) / (hi - lo)`),
/// implementing footnote 1 of the paper. `Denormalize` inverts the mapping
/// so upgraded products can be reported in original units.
class Normalizer {
 public:
  /// Learns min/max per dimension from `data` (usually P and T combined).
  /// `directions` may be empty (all minimize) or one entry per dimension.
  static Result<Normalizer> Fit(const Dataset& data,
                                std::vector<Direction> directions = {});

  /// Learns the scale from several datasets over the same space.
  static Result<Normalizer> FitAll(const std::vector<const Dataset*>& parts,
                                   std::vector<Direction> directions = {});

  size_t dims() const { return scales_.size(); }
  const DimScale& scale(size_t dim) const { return scales_[dim]; }

  /// Maps every point into [0,1]^d, minimize orientation.
  Dataset Normalize(const Dataset& data) const;

  /// Inverse mapping of one (possibly upgraded) normalized vector. Values
  /// below 0 (an upgrade can exceed the best observed value by epsilon)
  /// map slightly beyond the observed extreme — intentionally.
  std::vector<double> Denormalize(const std::vector<double>& unit) const;

 private:
  explicit Normalizer(std::vector<DimScale> scales)
      : scales_(std::move(scales)) {}

  std::vector<DimScale> scales_;
};

}  // namespace skyup

#endif  // SKYUP_DATA_NORMALIZE_H_
