#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace skyup {

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kAntiCorrelated:
      return "anti-correlated";
    case Distribution::kCorrelated:
      return "correlated";
  }
  return "?";
}

namespace {

// One unit-cube point per distribution; the caller scales to [lo, hi).
void UnitIndependent(Rng* rng, size_t dims, double* out) {
  for (size_t i = 0; i < dims; ++i) out[i] = rng->NextDouble();
}

// Anti-correlated points cluster around the hyperplane sum(x) = d/2
// (Börzsönyi et al.): draw the plane offset from a tight normal, spread it
// across dimensions uniformly at random (Dirichlet via exponentials), and
// reject the rare draw that leaves the cube.
void UnitAntiCorrelated(Rng* rng, size_t dims, double* out) {
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const double target =
        std::clamp(0.5 + 0.05 * rng->NextGaussian(), 0.05, 0.95) *
        static_cast<double>(dims);
    double total = 0.0;
    for (size_t i = 0; i < dims; ++i) {
      double e;
      do {
        e = -std::log(1.0 - rng->NextDouble());
      } while (e <= 0.0);
      out[i] = e;
      total += e;
    }
    bool ok = true;
    for (size_t i = 0; i < dims; ++i) {
      out[i] = out[i] / total * target;
      if (out[i] > 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) return;
  }
  // Extremely unlikely fallback: clamp the last attempt into the cube.
  for (size_t i = 0; i < dims; ++i) out[i] = std::min(out[i], 1.0);
}

void UnitCorrelated(Rng* rng, size_t dims, double* out) {
  const double base = rng->NextDouble();
  for (size_t i = 0; i < dims; ++i) {
    out[i] = std::clamp(base + 0.05 * rng->NextGaussian(), 0.0, 1.0);
  }
}

}  // namespace

Result<Dataset> GenerateDataset(const GeneratorConfig& config) {
  if (config.count == 0) {
    return Status::InvalidArgument("generator count must be >= 1");
  }
  if (config.dims == 0 || config.dims > 32) {
    return Status::InvalidArgument("generator dims must be in [1, 32]");
  }
  if (!(config.lo < config.hi)) {
    return Status::InvalidArgument("generator requires lo < hi");
  }

  Rng rng(config.seed);
  Dataset data(config.dims);
  data.Reserve(config.count);
  std::vector<double> unit(config.dims);
  const double span = config.hi - config.lo;
  for (size_t n = 0; n < config.count; ++n) {
    switch (config.distribution) {
      case Distribution::kIndependent:
        UnitIndependent(&rng, config.dims, unit.data());
        break;
      case Distribution::kAntiCorrelated:
        UnitAntiCorrelated(&rng, config.dims, unit.data());
        break;
      case Distribution::kCorrelated:
        UnitCorrelated(&rng, config.dims, unit.data());
        break;
    }
    for (size_t i = 0; i < config.dims; ++i) {
      unit[i] = config.lo + unit[i] * span;
    }
    data.Add(unit);
  }
  return data;
}

Result<Dataset> GenerateCompetitors(size_t count, size_t dims,
                                    Distribution distribution,
                                    uint64_t seed) {
  GeneratorConfig config;
  config.count = count;
  config.dims = dims;
  config.distribution = distribution;
  config.lo = 0.0;
  config.hi = 1.0;
  config.seed = seed;
  return GenerateDataset(config);
}

Result<Dataset> GenerateProducts(size_t count, size_t dims,
                                 Distribution distribution, uint64_t seed) {
  GeneratorConfig config;
  config.count = count;
  config.dims = dims;
  config.distribution = distribution;
  config.lo = 1.0 + 1e-9;  // (1, 2]: strictly worse than every competitor
  config.hi = 2.0;
  config.seed = seed;
  return GenerateDataset(config);
}

}  // namespace skyup
