#include "data/ordinal.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace skyup {

Result<OrdinalScale> OrdinalScale::Create(std::vector<std::string> levels) {
  if (levels.empty()) {
    return Status::InvalidArgument("an ordinal scale needs at least 1 level");
  }
  std::set<std::string> seen;
  for (const std::string& level : levels) {
    if (level.empty()) {
      return Status::InvalidArgument("ordinal levels must be non-empty");
    }
    if (!seen.insert(level).second) {
      return Status::InvalidArgument("duplicate ordinal level '" + level +
                                     "'");
    }
  }
  return OrdinalScale(std::move(levels));
}

Result<double> OrdinalScale::Rank(const std::string& level) const {
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i] == level) return static_cast<double>(i);
  }
  return Status::NotFound("unknown ordinal level '" + level + "'");
}

const std::string& OrdinalScale::Level(size_t rank) const {
  SKYUP_CHECK(rank < levels_.size());
  return levels_[rank];
}

const std::string& OrdinalScale::Unrank(double value) const {
  double idx = std::floor(value);
  idx = std::clamp(idx, 0.0, static_cast<double>(levels_.size() - 1));
  return levels_[static_cast<size_t>(idx)];
}

Result<std::shared_ptr<const TabulatedCost>> TabulatedCost::Create(
    std::vector<double> costs_by_rank) {
  if (costs_by_rank.size() < 2) {
    return Status::InvalidArgument(
        "a tabulated cost needs at least 2 rank entries");
  }
  for (size_t i = 1; i < costs_by_rank.size(); ++i) {
    if (costs_by_rank[i] > costs_by_rank[i - 1]) {
      return Status::InvalidArgument(
          "tabulated costs must be non-increasing in rank; entry " +
          std::to_string(i) + " rises");
    }
  }
  return std::shared_ptr<const TabulatedCost>(
      new TabulatedCost(std::move(costs_by_rank)));
}

double TabulatedCost::Cost(double value) const {
  const double max_rank = static_cast<double>(costs_.size() - 1);
  if (value <= 0.0) return costs_.front();
  if (value >= max_rank) return costs_.back();
  const size_t lo = static_cast<size_t>(value);
  const double frac = value - static_cast<double>(lo);
  return costs_[lo] * (1.0 - frac) + costs_[lo + 1] * frac;
}

std::string TabulatedCost::name() const {
  std::ostringstream out;
  out << "tabulated(" << costs_.size() << " levels, " << costs_.front()
      << " .. " << costs_.back() << ")";
  return out.str();
}

}  // namespace skyup
