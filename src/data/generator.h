#ifndef SKYUP_DATA_GENERATOR_H_
#define SKYUP_DATA_GENERATOR_H_

#include <cstdint>

#include "core/dataset.h"
#include "util/status.h"

namespace skyup {

/// Synthetic distributions used by the paper's empirical study [3].
enum class Distribution {
  kIndependent,     ///< uniform per dimension
  kAntiCorrelated,  ///< points near the hyperplane sum(x) = d/2: large
                    ///< skylines, the paper's hard case
  kCorrelated,      ///< points near the main diagonal: tiny skylines
};

const char* DistributionName(Distribution distribution);

/// Workload description for `GenerateDataset`.
struct GeneratorConfig {
  size_t count = 0;
  size_t dims = 0;
  Distribution distribution = Distribution::kIndependent;
  /// Coordinates fall in [lo, hi). The paper draws competitors P from
  /// [0,1)^d and candidates T from (1,2]^d (every candidate dominated).
  double lo = 0.0;
  double hi = 1.0;
  uint64_t seed = 1;
};

/// Generates `config.count` points of `config.dims` dimensions. The same
/// config always produces the same dataset (own PRNG, fixed algorithms).
Result<Dataset> GenerateDataset(const GeneratorConfig& config);

/// Paper defaults: competitor set P in [0,1)^dims.
Result<Dataset> GenerateCompetitors(size_t count, size_t dims,
                                    Distribution distribution, uint64_t seed);

/// Paper defaults: candidate set T in (1,2]^dims — uniformly worse than all
/// competitors, hence uncompetitive.
Result<Dataset> GenerateProducts(size_t count, size_t dims,
                                 Distribution distribution, uint64_t seed);

}  // namespace skyup

#endif  // SKYUP_DATA_GENERATOR_H_
