#include "data/cost_fitting.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace skyup {

namespace {

// Pool-adjacent-violators for a *non-increasing* sequence: classic PAVA on
// the value-descending order (where the target is non-decreasing). Each
// block carries (weighted) mean and weight; violating neighbors merge.
struct Block {
  double mean;
  double weight;
  size_t count;  // number of consumed knots
};

}  // namespace

Result<std::shared_ptr<const FittedCost>> FitAttributeCost(
    std::vector<CostSample> samples) {
  if (samples.size() < 2) {
    return Status::InvalidArgument(
        "cost fitting needs at least 2 samples");
  }
  for (const CostSample& s : samples) {
    if (!std::isfinite(s.value) || !std::isfinite(s.cost)) {
      return Status::InvalidArgument("cost samples must be finite");
    }
  }

  std::sort(samples.begin(), samples.end(),
            [](const CostSample& a, const CostSample& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.cost < b.cost;
            });

  // Pool exact value ties.
  std::vector<CostSample> pooled;
  std::vector<double> weights;
  for (size_t i = 0; i < samples.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < samples.size() && samples[j].value == samples[i].value) {
      sum += samples[j].cost;
      ++j;
    }
    pooled.push_back({samples[i].value, sum / static_cast<double>(j - i)});
    weights.push_back(static_cast<double>(j - i));
    i = j;
  }
  if (pooled.size() < 2) {
    return Status::InvalidArgument(
        "cost fitting needs at least 2 distinct attribute values");
  }

  // PAVA, scanning values ascending and enforcing non-increasing means:
  // a block whose mean EXCEEDS its predecessor's violates, so merge.
  std::vector<Block> stack;
  for (size_t i = 0; i < pooled.size(); ++i) {
    Block block{pooled[i].cost, weights[i], 1};
    while (!stack.empty() && stack.back().mean < block.mean) {
      const Block& prev = stack.back();
      block.mean = (block.mean * block.weight + prev.mean * prev.weight) /
                   (block.weight + prev.weight);
      block.weight += prev.weight;
      block.count += prev.count;
      stack.pop_back();
    }
    stack.push_back(block);
  }

  // Expand blocks back into per-value fitted costs.
  std::vector<CostSample> knots;
  knots.reserve(pooled.size());
  size_t knot_index = 0;
  for (const Block& block : stack) {
    for (size_t c = 0; c < block.count; ++c) {
      knots.push_back({pooled[knot_index].value, block.mean});
      ++knot_index;
    }
  }
  SKYUP_CHECK(knot_index == pooled.size());

  // Residual over the ORIGINAL samples (not the pooled means).
  double sq = 0.0;
  {
    size_t k = 0;
    for (const CostSample& s : samples) {
      while (knots[k].value != s.value) ++k;
      const double r = s.cost - knots[k].cost;
      sq += r * r;
    }
  }
  const double rmse = std::sqrt(sq / static_cast<double>(samples.size()));

  return std::shared_ptr<const FittedCost>(
      new FittedCost(std::move(knots), rmse));
}

double FittedCost::Cost(double value) const {
  if (value <= knots_.front().value) return knots_.front().cost;
  if (value >= knots_.back().value) return knots_.back().cost;
  // Binary search for the bracketing knot pair.
  size_t lo = 0;
  size_t hi = knots_.size() - 1;
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (knots_[mid].value <= value) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const CostSample& a = knots_[lo];
  const CostSample& b = knots_[hi];
  const double frac = (value - a.value) / (b.value - a.value);
  return a.cost * (1.0 - frac) + b.cost * frac;
}

std::string FittedCost::name() const {
  std::ostringstream out;
  out << "fitted(" << knots_.size() << " knots, rmse=" << rmse_ << ")";
  return out.str();
}

}  // namespace skyup
