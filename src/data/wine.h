#ifndef SKYUP_DATA_WINE_H_
#define SKYUP_DATA_WINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "util/status.h"

namespace skyup {

/// The three wine attributes the paper selects from the UCI white-wine
/// quality data set (Table III). Values index columns of the synthesized
/// table.
enum class WineAttr {
  kChlorides = 0,
  kSulphates = 1,
  kTotalSulfurDioxide = 2,
};

const char* WineAttrName(WineAttr attr);

/// The paper's four attribute combinations (Table III), in paper order:
/// {c,s}, {c,t}, {s,t}, {c,s,t}.
std::vector<std::vector<WineAttr>> WineAttributeCombinations();

/// Short label such as "c,s,t" for a combination.
std::string WineComboLabel(const std::vector<WineAttr>& attrs);

/// Synthesizes a stand-in for the UCI white-wine data set (4,898 tuples):
/// a Gaussian copula with the real attributes' mild pairwise correlations,
/// mapped through right-skewed log-normal marginals (chlorides, sulphates)
/// and a clipped normal (total SO2) that match the published min / max /
/// mean / sd. See DESIGN.md §4 for why this substitution preserves the
/// experiments' behaviour.
Result<Dataset> SynthesizeWine(size_t count = 4898, uint64_t seed = 2012);

/// Projects the wine table onto `attrs` and min-max normalizes each column
/// into [0,1] (minimize orientation, as in the paper's §IV-B).
Result<Dataset> WineSubset(const Dataset& wine,
                           const std::vector<WineAttr>& attrs);

/// The paper's experimental split of one reduced wine data set:
/// `products` holds `product_count` random *dominated* tuples (|T|=1,000 in
/// the paper), `competitors` the remaining tuples (|P|=3,898).
struct WineSplit {
  Dataset competitors;
  Dataset products;
};

Result<WineSplit> SplitWine(const Dataset& reduced, size_t product_count,
                            uint64_t seed = 7);

}  // namespace skyup

#endif  // SKYUP_DATA_WINE_H_
