#include "data/wine.h"

#include <algorithm>
#include <cmath>

#include "skyline/skyline.h"
#include "util/logging.h"
#include "util/random.h"

namespace skyup {

const char* WineAttrName(WineAttr attr) {
  switch (attr) {
    case WineAttr::kChlorides:
      return "chlorides";
    case WineAttr::kSulphates:
      return "sulphates";
    case WineAttr::kTotalSulfurDioxide:
      return "total sulfur dioxide";
  }
  return "?";
}

std::vector<std::vector<WineAttr>> WineAttributeCombinations() {
  using W = WineAttr;
  return {
      {W::kChlorides, W::kSulphates},
      {W::kChlorides, W::kTotalSulfurDioxide},
      {W::kSulphates, W::kTotalSulfurDioxide},
      {W::kChlorides, W::kSulphates, W::kTotalSulfurDioxide},
  };
}

std::string WineComboLabel(const std::vector<WineAttr>& attrs) {
  std::string label;
  for (const WineAttr a : attrs) {
    if (!label.empty()) label += ',';
    switch (a) {
      case WineAttr::kChlorides:
        label += 'c';
        break;
      case WineAttr::kSulphates:
        label += 's';
        break;
      case WineAttr::kTotalSulfurDioxide:
        label += 't';
        break;
    }
  }
  return label;
}

namespace {

// Published marginal statistics of the UCI winequality-white attributes.
struct Marginal {
  double mean;
  double sd;
  double lo;
  double hi;
  bool log_normal;  // right-skewed attributes use a log-normal shape
};

constexpr Marginal kChloridesStats = {0.0458, 0.0218, 0.009, 0.346, true};
constexpr Marginal kSulphatesStats = {0.4898, 0.1141, 0.22, 1.08, true};
constexpr Marginal kTotalSo2Stats = {138.36, 42.50, 9.0, 440.0, false};

double FromStandardNormal(const Marginal& m, double z) {
  double value;
  if (m.log_normal) {
    // Log-normal parameters reproducing the target mean and sd.
    const double ratio = m.sd / m.mean;
    const double sigma2 = std::log(1.0 + ratio * ratio);
    const double mu = std::log(m.mean) - 0.5 * sigma2;
    value = std::exp(mu + std::sqrt(sigma2) * z);
  } else {
    value = m.mean + m.sd * z;
  }
  return std::clamp(value, m.lo, m.hi);
}

}  // namespace

Result<Dataset> SynthesizeWine(size_t count, uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("wine synthesis needs count >= 1");
  }
  // Pairwise correlations of the real attributes (chlorides, sulphates,
  // total SO2) are mild; their Cholesky factor drives a Gaussian copula.
  constexpr double r_cs = 0.017;  // chlorides ~ sulphates
  constexpr double r_ct = 0.199;  // chlorides ~ total SO2
  constexpr double r_st = 0.135;  // sulphates ~ total SO2

  // Cholesky of [[1, r_cs, r_ct], [r_cs, 1, r_st], [r_ct, r_st, 1]].
  const double l11 = 1.0;
  const double l21 = r_cs;
  const double l22 = std::sqrt(1.0 - l21 * l21);
  const double l31 = r_ct;
  const double l32 = (r_st - l31 * l21) / l22;
  const double l33 = std::sqrt(1.0 - l31 * l31 - l32 * l32);

  Rng rng(seed);
  Dataset wine(3);
  wine.Reserve(count);
  std::vector<double> row(3);
  for (size_t i = 0; i < count; ++i) {
    const double g1 = rng.NextGaussian();
    const double g2 = rng.NextGaussian();
    const double g3 = rng.NextGaussian();
    const double z1 = l11 * g1;
    const double z2 = l21 * g1 + l22 * g2;
    const double z3 = l31 * g1 + l32 * g2 + l33 * g3;
    row[0] = FromStandardNormal(kChloridesStats, z1);
    row[1] = FromStandardNormal(kSulphatesStats, z2);
    row[2] = FromStandardNormal(kTotalSo2Stats, z3);
    wine.Add(row);
  }
  return wine;
}

Result<Dataset> WineSubset(const Dataset& wine,
                           const std::vector<WineAttr>& attrs) {
  if (wine.dims() != 3) {
    return Status::InvalidArgument("expected the 3-column wine table");
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("attribute selection is empty");
  }
  if (wine.empty()) {
    return Status::InvalidArgument("wine table is empty");
  }

  // Min-max per selected column.
  std::vector<double> lo(attrs.size()), hi(attrs.size());
  for (size_t a = 0; a < attrs.size(); ++a) {
    const size_t col = static_cast<size_t>(attrs[a]);
    lo[a] = hi[a] = wine.data(0)[col];
    for (size_t r = 1; r < wine.size(); ++r) {
      const double v = wine.data(static_cast<PointId>(r))[col];
      lo[a] = std::min(lo[a], v);
      hi[a] = std::max(hi[a], v);
    }
    if (hi[a] <= lo[a]) hi[a] = lo[a] + 1.0;
  }

  Dataset out(attrs.size());
  out.Reserve(wine.size());
  std::vector<double> row(attrs.size());
  for (size_t r = 0; r < wine.size(); ++r) {
    const double* p = wine.data(static_cast<PointId>(r));
    for (size_t a = 0; a < attrs.size(); ++a) {
      const size_t col = static_cast<size_t>(attrs[a]);
      row[a] = (p[col] - lo[a]) / (hi[a] - lo[a]);
    }
    out.Add(row);
  }
  return out;
}

Result<WineSplit> SplitWine(const Dataset& reduced, size_t product_count,
                            uint64_t seed) {
  if (reduced.empty()) {
    return Status::InvalidArgument("reduced wine data set is empty");
  }
  if (product_count == 0) {
    return Status::InvalidArgument("product_count must be >= 1");
  }

  // "Pick non-skyline tuples at random as the product data set T": we use
  // strictly dominated tuples, so every T member has at least one
  // dominator among the competitors it leaves behind.
  std::vector<PointId> dominated;
  for (size_t r = 0; r < reduced.size(); ++r) {
    const PointId id = static_cast<PointId>(r);
    if (IsDominated(reduced, id)) dominated.push_back(id);
  }
  if (dominated.size() < product_count) {
    return Status::FailedPrecondition(
        "only " + std::to_string(dominated.size()) +
        " dominated tuples available, need " + std::to_string(product_count));
  }

  Rng rng(seed);
  rng.Shuffle(&dominated);
  dominated.resize(product_count);
  std::sort(dominated.begin(), dominated.end());

  WineSplit split{Dataset(reduced.dims()), Dataset(reduced.dims())};
  split.competitors.Reserve(reduced.size() - product_count);
  split.products.Reserve(product_count);
  size_t next = 0;
  for (size_t r = 0; r < reduced.size(); ++r) {
    const PointId id = static_cast<PointId>(r);
    if (next < dominated.size() && dominated[next] == id) {
      split.products.Add(reduced.data(id));
      ++next;
    } else {
      split.competitors.Add(reduced.data(id));
    }
  }
  return split;
}

}  // namespace skyup
