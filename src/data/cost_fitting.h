#ifndef SKYUP_DATA_COST_FITTING_H_
#define SKYUP_DATA_COST_FITTING_H_

// Calibrating cost functions from data (library extension). The paper
// assumes a monotonic attribute cost function is *given*; in practice a
// manufacturer has observations — (attribute value, unit cost) pairs from
// past production runs — that are noisy and need not be monotone sample
// by sample. `FitAttributeCost` turns them into the best monotone
// (non-increasing) fit under squared error via isotonic regression (pool
// adjacent violators), yielding a cost function that satisfies the
// paper's monotonicity assumption by construction.

#include <memory>
#include <utility>
#include <vector>

#include "core/cost_function.h"
#include "util/status.h"

namespace skyup {

/// A sample: attribute value -> observed manufacturing cost.
struct CostSample {
  double value = 0.0;
  double cost = 0.0;
};

/// Piecewise-linear monotone (non-increasing) attribute cost produced by
/// `FitAttributeCost`. Evaluation interpolates between fitted knots and
/// clamps beyond them (so upgraded values slightly past the best observed
/// value stay finite).
class FittedCost final : public AttributeCostFunction {
 public:
  double Cost(double value) const override;
  std::string name() const override;

  /// The fitted knots, ascending in value, non-increasing in cost.
  const std::vector<CostSample>& knots() const { return knots_; }

  /// Root-mean-squared residual of the fit over the input samples.
  double rmse() const { return rmse_; }

 private:
  friend Result<std::shared_ptr<const FittedCost>> FitAttributeCost(
      std::vector<CostSample> samples);

  FittedCost(std::vector<CostSample> knots, double rmse)
      : knots_(std::move(knots)), rmse_(rmse) {}

  std::vector<CostSample> knots_;
  double rmse_;
};

/// Fits the least-squares non-increasing step/linear cost through
/// `samples` (at least 2, finite values). Ties in `value` are pooled by
/// averaging before regression.
Result<std::shared_ptr<const FittedCost>> FitAttributeCost(
    std::vector<CostSample> samples);

}  // namespace skyup

#endif  // SKYUP_DATA_COST_FITTING_H_
