#include "data/normalize.h"

#include <algorithm>

#include "util/logging.h"

namespace skyup {

Result<Normalizer> Normalizer::Fit(const Dataset& data,
                                   std::vector<Direction> directions) {
  return FitAll({&data}, std::move(directions));
}

Result<Normalizer> Normalizer::FitAll(
    const std::vector<const Dataset*>& parts,
    std::vector<Direction> directions) {
  if (parts.empty()) {
    return Status::InvalidArgument("Fit requires at least one dataset");
  }
  for (const Dataset* part : parts) {
    if (part == nullptr || part->empty()) {
      return Status::InvalidArgument("Fit requires non-empty datasets");
    }
  }
  const size_t dims = parts[0]->dims();
  for (const Dataset* part : parts) {
    if (part->dims() != dims) {
      return Status::InvalidArgument("datasets disagree on dimensionality");
    }
  }
  if (directions.empty()) {
    directions.assign(dims, Direction::kMinimize);
  } else if (directions.size() != dims) {
    return Status::InvalidArgument(
        "directions size must match dimensionality");
  }

  std::vector<DimScale> scales(dims);
  for (size_t i = 0; i < dims; ++i) {
    scales[i].direction = directions[i];
  }
  bool first = true;
  for (const Dataset* part : parts) {
    for (size_t r = 0; r < part->size(); ++r) {
      const double* p = part->data(static_cast<PointId>(r));
      for (size_t i = 0; i < dims; ++i) {
        if (first) {
          scales[i].lo = scales[i].hi = p[i];
        } else {
          scales[i].lo = std::min(scales[i].lo, p[i]);
          scales[i].hi = std::max(scales[i].hi, p[i]);
        }
      }
      first = false;
    }
  }
  for (size_t i = 0; i < dims; ++i) {
    if (scales[i].hi <= scales[i].lo) {
      // A constant dimension: give it unit width so the mapping stays
      // well-defined (all values land on 0).
      scales[i].hi = scales[i].lo + 1.0;
    }
  }
  return Normalizer(std::move(scales));
}

Dataset Normalizer::Normalize(const Dataset& data) const {
  SKYUP_CHECK(data.dims() == dims());
  Dataset out(dims());
  out.Reserve(data.size());
  std::vector<double> row(dims());
  for (size_t r = 0; r < data.size(); ++r) {
    const double* p = data.data(static_cast<PointId>(r));
    for (size_t i = 0; i < dims(); ++i) {
      const DimScale& s = scales_[i];
      const double unit = (p[i] - s.lo) / (s.hi - s.lo);
      row[i] = s.direction == Direction::kMinimize ? unit : 1.0 - unit;
    }
    out.Add(row);
  }
  return out;
}

std::vector<double> Normalizer::Denormalize(
    const std::vector<double>& unit) const {
  SKYUP_CHECK(unit.size() == dims());
  std::vector<double> raw(dims());
  for (size_t i = 0; i < dims(); ++i) {
    const DimScale& s = scales_[i];
    const double u =
        s.direction == Direction::kMinimize ? unit[i] : 1.0 - unit[i];
    raw[i] = s.lo + u * (s.hi - s.lo);
  }
  return raw;
}

}  // namespace skyup
