#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include <fstream>

#include "core/dominance_batch.h"
#include "core/planner.h"
#include "core/report.h"
#include "data/generator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "data/wine.h"
#include "serve/load_gen.h"
#include "serve/replay.h"
#include "serve/server.h"
#include "serve/shard/front_door.h"
#include "serve/shard/wire.h"
#include "skyline/skyline.h"
#include "util/csv.h"
#include "util/timer.h"

namespace skyup {
namespace cli {

namespace {

constexpr const char* kUsage = R"(usage: skyup <command> [--flag=value ...]

commands:
  generate   synthesize a workload CSV
             --out=FILE --count=N --dims=D [--dist=indep|anti|corr]
             [--lo=0] [--hi=1] [--seed=1]
  wine       synthesize the UCI-wine stand-in table (4,898 x 3)
             --out=FILE [--count=4898] [--seed=2012]
  skyline    print the skyline row indices of a CSV
             --in=FILE [--algo=bnl|sfs|bbs|dnc]
  topk       top-k product upgrading
             --competitors=FILE --products=FILE [--k=1]
             [--algorithm=join|improved|basic|brute] [--lb=nlb|clb|alb]
             [--epsilon=1e-6] [--fanout=64] [--threads=1] [--paper-bounds]
             [--format=text|csv|json] [--flat-index=on|off] [--probe-tile]
             [--stats]
             [--profile] [--trace-out=FILE] [--metrics-out=FILE]
             (--threads: 1 = sequential, 0 = all hardware threads;
              --stats: print work counters — heap pops, nodes visited,
              block-kernel calls, ... — as trailing '#' lines;
              --profile: per-phase wall-time breakdown + latency
              percentiles on stderr;
              --trace-out: Chrome trace-event JSON of the run — open in
              chrome://tracing or https://ui.perfetto.dev;
              --metrics-out: counters/gauges/histograms dump — JSON when
              FILE ends in .json, Prometheus text otherwise)
  serve      replay or generate a live update+query workload, run a
             closed-loop load generator (in-process or over TCP), or
             listen as a multi-tenant network front door
             --replay=OPS.csv [--out=FILE] [--metrics-out=FILE]
             [--shards=0] [--epsilon=1e-6] [--fanout=64]
             [--rebuild-threshold=64]
             [--min-publish-backlog=1] [--compact-tombstone-pct=50]
             [--compact-tail-pct=150] [--batch-max=1]
             [--batch-wait-us=200] [--memo-cache-mb=16]
             | --gen-ops=FILE --ops=N --dims=D [--seed=1]
             | --load-gen --dims=D [--duration=5] [--clients=8] [--qps=0]
             [--query-fraction=0.9] [--k=10] [--timeout=0]
             [--preload-p=20000] [--preload-t=2000] [--threads=2]
             [--shards=0] [--shard-threads=0]
             [--rebuild-threshold=1024] [--batch-max=16]
             [--batch-wait-us=200] [--memo-cache-mb=16] [--seed=42]
             [--connect=HOST:PORT] [--tenant=bench]
             [--out=FILE.json] [--metrics-out=FILE]
             | --listen=PORT [--threads=2] [--quota=64]
             [--rebuild-threshold=1024] [--batch-max=16]
             [--batch-wait-us=200] [--memo-cache-mb=16]
             (--shards=N partitions P/T into N spatial shards behind one
              cross-shard epoch; results are byte-identical to --shards=0
              — CI replays both and compares. --listen serves the
              length-prefixed text wire protocol on 127.0.0.1:PORT
              (PORT=0 picks an ephemeral port, printed on stdout);
              tenants are created over the wire with their own dims,
              shard count, and admission quota. --load-gen --connect
              drives a remote front door instead of an in-process
              server, creating --tenant first if needed.)
             replay and load-gen also take the flight-recorder flags:
             [--flight-recorder=on|off] [--flight-out=FILE]
             [--slow-log=FILE] [--slow-query-us=N] [--stats-interval-ms=N]
             (replay mode drives the serving layer deterministically:
              queries run inline and snapshot publishes trigger inline on
              the op-count threshold, so two replays of the same workload
              produce byte-identical output — including under
              --batch-max>1, which groups runs of consecutive queries
              into one shared traversal; most publishes are cheap
              tombstone/tail patches — a full STR compaction runs only
              past the --compact-*-pct densities; --gen-ops writes a
              seeded random workload of inserts/erases/queries instead;
              --load-gen preloads the table, then drives the worker pool
              from --clients closed-loop threads for --duration seconds
              (--qps=0 saturates; >0 paces the fleet) and reports
              offered/achieved QPS and latency percentiles, as JSON when
              --out is given; --memo-cache-mb=0 disables the epoch memo;
              --flight-out dumps the flight recorder as JSONL at the end
              of the run — and whenever the process receives SIGUSR1,
              without pausing admission; --slow-log appends structured
              JSONL log records (slow queries past --slow-query-us,
              publishes, heartbeats every --stats-interval-ms);
              --flight-recorder=off disables the recorder rings)
  help       show this message
)";

// Parsed "--key=value" flags; bare "--key" maps to "true".
class Flags {
 public:
  static std::optional<Flags> Parse(const std::vector<std::string>& args,
                                    size_t begin, std::ostream& err) {
    Flags flags;
    for (size_t i = begin; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a.rfind("--", 0) != 0) {
        err << "unexpected argument '" << a << "'\n";
        return std::nullopt;
      }
      const size_t eq = a.find('=');
      if (eq == std::string::npos) {
        flags.values_[a.substr(2)] = "true";
      } else {
        flags.values_[a.substr(2, eq - 2)] = a.substr(eq + 1);
      }
    }
    return flags;
  }

  std::optional<std::string> Get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    used_.insert(key);
    return it->second;
  }

  std::string GetOr(const std::string& key, const std::string& def) const {
    return Get(key).value_or(def);
  }

  // Flags nobody consumed are usage errors (typo protection).
  bool ReportUnused(std::ostream& err) const {
    bool any = false;
    for (const auto& [key, value] : values_) {
      if (used_.count(key) == 0) {
        err << "unknown flag --" << key << "\n";
        any = true;
      }
    }
    return any;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

std::optional<double> ToDouble(const std::string& s) {
  try {
    size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<long long> ToInt(const std::string& s) {
  try {
    size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

Result<Dataset> LoadCsvDataset(const std::string& path) {
  Result<CsvTable> table = ReadCsvFile(path, /*has_header=*/false);
  if (!table.ok()) return table.status();
  if (table->rows.empty()) {
    return Status::InvalidArgument("'" + path + "' holds no rows");
  }
  return Dataset::FromRows(table->rows);
}

Status WriteDatasetCsv(const std::string& path, const Dataset& ds) {
  CsvTable table;
  table.rows.reserve(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    const double* p = ds.data(static_cast<PointId>(i));
    table.rows.emplace_back(p, p + ds.dims());
  }
  return WriteCsvFile(path, table);
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

int Usage(std::ostream& err, const std::string& message) {
  err << message << "\n" << kUsage;
  return 2;
}

// ---- Flight recorder / structured log plumbing (serve modes) ----------

// The server a SIGUSR1 should dump. Plain (seq_cst) atomic: installs are
// rare, and the handler body below is the async-signal-safe part.
std::atomic<Server*> g_dump_server{nullptr};

extern "C" void HandleDumpSignal(int) {
  // Async-signal-safe: a lock-free atomic load plus RequestDump's
  // lock-free atomic store. No locks, no allocation, no IO.
  Server* server = g_dump_server.load();
  if (server != nullptr) server->RequestDump();
}

// Routes SIGUSR1 to `server->RequestDump()` for this scope.
class SignalDumpScope {
 public:
  explicit SignalDumpScope(Server* server) {
    g_dump_server.store(server);
#ifdef SIGUSR1
    std::signal(SIGUSR1, HandleDumpSignal);
#endif
  }
  ~SignalDumpScope() {
#ifdef SIGUSR1
    std::signal(SIGUSR1, SIG_DFL);
#endif
    g_dump_server.store(nullptr);
  }
  SignalDumpScope(const SignalDumpScope&) = delete;
  SignalDumpScope& operator=(const SignalDumpScope&) = delete;
};

// Parses the observability flags shared by the serve modes
// (--flight-recorder, --flight-out, --slow-log, --slow-query-us,
// --stats-interval-ms) into `options`, installing the structured-log
// file sink when --slow-log is given. Returns an exit code on a bad
// flag, nullopt to proceed.
std::optional<int> ApplyServeObsFlags(const Flags& flags,
                                      ServerOptions* options,
                                      std::ostream& err) {
  const std::string recorder = flags.GetOr("flight-recorder", "on");
  if (recorder == "on") {
    options->flight_recorder = true;
  } else if (recorder == "off") {
    options->flight_recorder = false;
  } else {
    return Usage(err, "serve: --flight-recorder must be on or off");
  }
  const auto slow_us = ToInt(flags.GetOr("slow-query-us", "0"));
  const auto interval = ToInt(flags.GetOr("stats-interval-ms", "0"));
  if (!slow_us || !interval || *slow_us < 0 || *interval < 0) {
    return Usage(err, "serve: malformed observability flag");
  }
  options->slow_query_us = static_cast<uint64_t>(*slow_us);
  options->stats_interval_ms = static_cast<size_t>(*interval);
  const auto flight_out = flags.Get("flight-out");
  if (flight_out.has_value()) options->flight_dump_path = *flight_out;
  const auto slow_log = flags.Get("slow-log");
  if (slow_log.has_value()) {
    Status installed = SetLogFile(*slow_log, LogLevel::kInfo);
    if (!installed.ok()) return Fail(err, installed);
  }
  return std::nullopt;
}

// End-of-run dump: writes the final flight-recorder state to
// --flight-out (overwriting any earlier SIGUSR1 dump with the strictly
// more complete final one) and closes the structured-log sink so a
// --slow-log file is flushed to disk.
int FinishServeObs(Server* server, const ServerOptions& options,
                   std::ostream& err) {
  int rc = 0;
  if (!options.flight_dump_path.empty()) {
    std::ofstream file(options.flight_dump_path,
                       std::ios::out | std::ios::trunc);
    if (!file) {
      err << "error: cannot open '" << options.flight_dump_path
          << "' for writing\n";
      rc = 1;
    } else {
      server->DumpDiagnostics(file);
    }
  }
  return rc;
}

// Uninstalls the structured-log sink at scope exit (flushing/closing a
// --slow-log file), including on error returns.
struct LogSinkCloser {
  ~LogSinkCloser() { CloseLogSink(); }
};

int CmdGenerate(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto path = flags.Get("out");
  const auto count = flags.Get("count");
  const auto dims = flags.Get("dims");
  if (!path || !count || !dims) {
    return Usage(err, "generate requires --out, --count, and --dims");
  }
  const auto n = ToInt(*count);
  const auto d = ToInt(*dims);
  const auto lo = ToDouble(flags.GetOr("lo", "0"));
  const auto hi = ToDouble(flags.GetOr("hi", "1"));
  const auto seed = ToInt(flags.GetOr("seed", "1"));
  const std::string dist = flags.GetOr("dist", "indep");
  if (!n || !d || !lo || !hi || !seed || *n <= 0 || *d <= 0) {
    return Usage(err, "generate: malformed numeric flag");
  }
  GeneratorConfig config;
  config.count = static_cast<size_t>(*n);
  config.dims = static_cast<size_t>(*d);
  config.lo = *lo;
  config.hi = *hi;
  config.seed = static_cast<uint64_t>(*seed);
  if (dist == "indep") {
    config.distribution = Distribution::kIndependent;
  } else if (dist == "anti") {
    config.distribution = Distribution::kAntiCorrelated;
  } else if (dist == "corr") {
    config.distribution = Distribution::kCorrelated;
  } else {
    return Usage(err, "generate: --dist must be indep, anti, or corr");
  }
  if (flags.ReportUnused(err)) return 2;

  Result<Dataset> ds = GenerateDataset(config);
  if (!ds.ok()) return Fail(err, ds.status());
  Status written = WriteDatasetCsv(*path, *ds);
  if (!written.ok()) return Fail(err, written);
  out << "wrote " << ds->size() << " x " << ds->dims() << " "
      << DistributionName(config.distribution) << " points to " << *path
      << "\n";
  return 0;
}

int CmdWine(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto path = flags.Get("out");
  if (!path) return Usage(err, "wine requires --out");
  const auto count = ToInt(flags.GetOr("count", "4898"));
  const auto seed = ToInt(flags.GetOr("seed", "2012"));
  if (!count || !seed || *count <= 0) {
    return Usage(err, "wine: malformed numeric flag");
  }
  if (flags.ReportUnused(err)) return 2;

  Result<Dataset> wine = SynthesizeWine(static_cast<size_t>(*count),
                                        static_cast<uint64_t>(*seed));
  if (!wine.ok()) return Fail(err, wine.status());
  Status written = WriteDatasetCsv(*path, *wine);
  if (!written.ok()) return Fail(err, written);
  out << "wrote " << wine->size()
      << " wine tuples (chlorides, sulphates, total SO2) to " << *path
      << "\n";
  return 0;
}

int CmdSkyline(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto path = flags.Get("in");
  if (!path) return Usage(err, "skyline requires --in");
  const std::string algo_name = flags.GetOr("algo", "sfs");
  SkylineAlgorithm algo;
  if (algo_name == "bnl") {
    algo = SkylineAlgorithm::kBnl;
  } else if (algo_name == "sfs") {
    algo = SkylineAlgorithm::kSfs;
  } else if (algo_name == "bbs") {
    algo = SkylineAlgorithm::kBbs;
  } else if (algo_name == "dnc") {
    algo = SkylineAlgorithm::kDnc;
  } else {
    return Usage(err, "skyline: --algo must be bnl, sfs, bbs, or dnc");
  }
  if (flags.ReportUnused(err)) return 2;

  Result<Dataset> ds = LoadCsvDataset(*path);
  if (!ds.ok()) return Fail(err, ds.status());
  Timer timer;
  std::vector<PointId> sky = Skyline(*ds, algo);
  std::sort(sky.begin(), sky.end());
  out << "# skyline of " << ds->size() << " points: " << sky.size()
      << " members (" << algo_name << ", "
      << static_cast<long long>(timer.ElapsedMicros()) << " us)\n";
  for (PointId id : sky) out << id << "\n";
  return 0;
}

int CmdTopK(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto competitors_path = flags.Get("competitors");
  const auto products_path = flags.Get("products");
  if (!competitors_path || !products_path) {
    return Usage(err, "topk requires --competitors and --products");
  }
  const auto k = ToInt(flags.GetOr("k", "1"));
  const auto epsilon = ToDouble(flags.GetOr("epsilon", "1e-6"));
  const auto fanout = ToInt(flags.GetOr("fanout", "64"));
  const auto threads = ToInt(flags.GetOr("threads", "1"));
  if (!k || !epsilon || !fanout || !threads || *k <= 0 || *fanout < 2 ||
      *threads < 0) {
    return Usage(err, "topk: malformed numeric flag");
  }

  const std::string algo_name = flags.GetOr("algorithm", "join");
  Algorithm algo;
  if (algo_name == "join") {
    algo = Algorithm::kJoin;
  } else if (algo_name == "improved") {
    algo = Algorithm::kImprovedProbing;
  } else if (algo_name == "basic") {
    algo = Algorithm::kBasicProbing;
  } else if (algo_name == "brute") {
    algo = Algorithm::kBruteForce;
  } else {
    return Usage(err,
                 "topk: --algorithm must be join, improved, basic, or brute");
  }

  const std::string lb_name = flags.GetOr("lb", "clb");
  PlannerOptions options;
  if (lb_name == "nlb") {
    options.lower_bound = LowerBoundKind::kNaive;
  } else if (lb_name == "clb") {
    options.lower_bound = LowerBoundKind::kConservative;
  } else if (lb_name == "alb") {
    options.lower_bound = LowerBoundKind::kAggressive;
  } else {
    return Usage(err, "topk: --lb must be nlb, clb, or alb");
  }
  options.epsilon = *epsilon;
  options.rtree_fanout = static_cast<size_t>(*fanout);
  options.threads = static_cast<size_t>(*threads);
  if (flags.GetOr("paper-bounds", "false") == "true") {
    options.bound_mode = BoundMode::kPaper;
  }
  const std::string flat_name = flags.GetOr("flat-index", "on");
  if (flat_name == "on") {
    options.use_flat_index = true;
  } else if (flat_name == "off") {
    options.use_flat_index = false;
  } else {
    return Usage(err, "topk: --flat-index must be on or off");
  }
  if (flags.GetOr("probe-tile", "false") == "true") {
    if (!options.use_flat_index || options.threads != 1) {
      return Usage(err,
                   "topk: --probe-tile requires --flat-index=on --threads=1");
    }
    options.probe_tile = true;
  }
  const bool show_stats = flags.GetOr("stats", "false") == "true";
  const bool profile = flags.GetOr("profile", "false") == "true";
  const auto trace_path = flags.Get("trace-out");
  const auto metrics_path = flags.Get("metrics-out");
  Result<ReportFormat> format =
      ParseReportFormat(flags.GetOr("format", "csv"));
  if (!format.ok()) return Usage(err, format.status().message());
  if (flags.ReportUnused(err)) return 2;

  // The query body lives in a lambda so the root span closes before the
  // trace export below reads the buffers.
  auto run_query = [&]() -> int {
    SKYUP_TRACE_SPAN("cli/topk");
    Result<Dataset> competitors = LoadCsvDataset(*competitors_path);
    if (!competitors.ok()) return Fail(err, competitors.status());
    Result<Dataset> products = LoadCsvDataset(*products_path);
    if (!products.ok()) return Fail(err, products.status());

    const size_t dims = competitors->dims();
    Result<UpgradePlanner> planner = UpgradePlanner::Create(
        std::move(competitors).value(), std::move(products).value(),
        ProductCostFunction::ReciprocalSum(dims, 1e-3), options);
    if (!planner.ok()) return Fail(err, planner.status());

    const bool want_telemetry = profile || metrics_path.has_value();
    Timer timer;
    ExecStats stats;
    QueryTelemetry telemetry;
    Result<std::vector<UpgradeResult>> top = planner->TopK(
        static_cast<size_t>(*k), algo,
        (show_stats || metrics_path.has_value()) ? &stats : nullptr,
        want_telemetry ? &telemetry : nullptr);
    if (!top.ok()) return Fail(err, top.status());
    const double wall_seconds = timer.ElapsedSeconds();
    if (*format != ReportFormat::kJson) {
      out << "# top-" << *k << " upgrades via " << AlgorithmName(algo) << " ("
          << static_cast<long long>(wall_seconds * 1e6) << " us)\n";
    }
    if (*format == ReportFormat::kCsv) {
      out << "# rank,product_row,cost,competitive,upgraded...\n";
    }
    WriteReport(*top, *format, out);
    if (show_stats) {
      // Comment lines keep text/csv output parseable; JSON cannot carry
      // comments, so there the counters go to the diagnostic stream.
      std::ostream& s = (*format == ReportFormat::kJson) ? err : out;
      s << "# stats: kernel=" << BatchKernelName()
        << " flat_index=" << (options.use_flat_index ? "on" : "off") << "\n"
        << "# stats: products_processed=" << stats.products_processed
        << " candidates_pruned=" << stats.candidates_pruned
        << " upgrade_calls=" << stats.upgrade_calls << "\n"
        << "# stats: heap_pops=" << stats.heap_pops
        << " nodes_visited=" << stats.nodes_visited
        << " points_scanned=" << stats.points_scanned
        << " block_kernel_calls=" << stats.block_kernel_calls << "\n"
        << "# stats: dominators_fetched=" << stats.dominators_fetched
        << " skyline_points_total=" << stats.skyline_points_total
        << " lbc_evaluations=" << stats.lbc_evaluations
        << " threshold_updates=" << stats.threshold_updates << "\n";
    }
    if (profile) WriteProfile(telemetry, wall_seconds, err);
    if (metrics_path.has_value()) {
      MetricsRegistry registry;
      AddExecStatsMetrics(stats, &registry);
      AddTelemetryMetrics(telemetry, &registry);
      registry
          .AddGauge("skyup_query_wall_seconds",
                    "end-to-end wall time of the top-k query")
          ->Set(wall_seconds);
      std::ofstream metrics_file(*metrics_path);
      if (!metrics_file) {
        return Fail(err, Status::IOError("cannot open '" + *metrics_path +
                                         "' for writing"));
      }
      const bool json = metrics_path->size() >= 5 &&
                        metrics_path->compare(metrics_path->size() - 5, 5,
                                              ".json") == 0;
      if (json) {
        registry.WriteJson(metrics_file);
      } else {
        registry.WritePrometheus(metrics_file);
      }
    }
    return 0;
  };

  if (trace_path.has_value()) {
    if (kTraceLevel == 0) {
      err << "# trace: instrumentation compiled out "
             "(SKYUP_TRACE_LEVEL=off); the trace will hold no spans\n";
    }
    EnableTracing();
  }
  const int rc = run_query();
  if (trace_path.has_value()) {
    DisableTracing();
    const Status written = WriteChromeTraceFile(*trace_path);
    if (!written.ok()) return Fail(err, written);
    const TraceStats trace_stats = GetTraceStats();
    err << "# trace: " << trace_stats.events_buffered << " spans from "
        << trace_stats.threads << " threads -> " << *trace_path;
    if (trace_stats.events_dropped > 0) {
      err << " (" << trace_stats.events_dropped
          << " dropped by full ring buffers)";
    }
    err << "\n";
  }
  return rc;
}

int CmdServeLoadGen(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto dims = ToInt(flags.GetOr("dims", "3"));
  const auto duration = ToDouble(flags.GetOr("duration", "5"));
  const auto clients = ToInt(flags.GetOr("clients", "8"));
  const auto qps = ToDouble(flags.GetOr("qps", "0"));
  const auto query_fraction = ToDouble(flags.GetOr("query-fraction", "0.9"));
  const auto k = ToInt(flags.GetOr("k", "10"));
  const auto timeout = ToDouble(flags.GetOr("timeout", "0"));
  const auto preload_p = ToInt(flags.GetOr("preload-p", "20000"));
  const auto preload_t = ToInt(flags.GetOr("preload-t", "2000"));
  const auto threads = ToInt(flags.GetOr("threads", "2"));
  const auto shards = ToInt(flags.GetOr("shards", "0"));
  const auto shard_threads = ToInt(flags.GetOr("shard-threads", "0"));
  const auto threshold = ToInt(flags.GetOr("rebuild-threshold", "1024"));
  const auto batch_max = ToInt(flags.GetOr("batch-max", "16"));
  const auto batch_wait = ToInt(flags.GetOr("batch-wait-us", "200"));
  const auto memo_mb = ToInt(flags.GetOr("memo-cache-mb", "16"));
  const auto seed = ToInt(flags.GetOr("seed", "42"));
  const auto connect = flags.Get("connect");
  const std::string tenant = flags.GetOr("tenant", "bench");
  const auto out_path = flags.Get("out");
  const auto metrics_path = flags.Get("metrics-out");
  if (!dims || !duration || !clients || !qps || !query_fraction || !k ||
      !timeout || !preload_p || !preload_t || !threads || !shards ||
      !shard_threads || !threshold || !batch_max || !batch_wait || !memo_mb ||
      !seed || *dims < 1 || *duration <= 0 || *clients < 1 || *qps < 0 ||
      *query_fraction < 0 || *query_fraction > 1 || *k < 1 || *timeout < 0 ||
      *preload_p < 0 || *preload_t < 0 || *threads < 1 || *shards < 0 ||
      *shard_threads < 0 || *threshold < 1 || *batch_max < 1 ||
      *batch_wait < 0 || *memo_mb < 0 || *seed < 0) {
    return Usage(err, "serve --load-gen: malformed numeric flag");
  }

  LoadGenOptions load;
  load.dims = static_cast<size_t>(*dims);
  load.clients = static_cast<size_t>(*clients);
  load.duration_seconds = *duration;
  load.target_qps = *qps;
  load.query_fraction = *query_fraction;
  load.k = static_cast<size_t>(*k);
  load.timeout_seconds = *timeout;
  load.preload_competitors = static_cast<size_t>(*preload_p);
  load.preload_products = static_cast<size_t>(*preload_t);
  load.seed = static_cast<uint64_t>(*seed);

  // Counters for the report footer/JSON; filled from the in-process
  // server's stats, or from the remote tenant's `stats` over the wire.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t batches_executed = 0;
  uint64_t batched_queries = 0;
  Result<LoadGenReport> report = Status::Internal("load-gen never ran");

  ServerOptions options;
  options.dims = load.dims;
  options.shards = static_cast<size_t>(*shards);
  options.shard_query_threads = static_cast<size_t>(*shard_threads);
  options.query_threads = static_cast<size_t>(*threads);
  options.rebuild_threshold_ops = static_cast<size_t>(*threshold);
  options.batch_max = static_cast<size_t>(*batch_max);
  options.batch_wait_us = static_cast<size_t>(*batch_wait);
  options.memo_cache_mb = static_cast<size_t>(*memo_mb);

  std::unique_ptr<Server> server;  // in-process mode only
  if (connect.has_value()) {
    // Remote mode: drive a `serve --listen` front door over the wire
    // protocol. Server-side knobs come from the listener, not here.
    if (metrics_path.has_value()) {
      return Usage(err, "serve --load-gen: --metrics-out needs an "
                        "in-process server (drop --connect)");
    }
    const size_t colon = connect->rfind(':');
    std::optional<long long> port;
    if (colon != std::string::npos) port = ToInt(connect->substr(colon + 1));
    if (!port || *port < 1 || *port > 65535) {
      return Usage(err, "serve --load-gen: --connect must be HOST:PORT");
    }
    const std::string host = connect->substr(0, colon);
    if (flags.ReportUnused(err)) return 2;
    Result<WireClient> admin =
        WireClient::Dial(host, static_cast<uint16_t>(*port));
    if (!admin.ok()) return Fail(err, admin.status());
    Result<uint64_t> tenant_id = admin->CreateTenant(
        tenant, load.dims, static_cast<size_t>(*shards), /*quota=*/0,
        /*attach_existing=*/true);
    if (!tenant_id.ok()) return Fail(err, tenant_id.status());
    err << "# load-gen: tenant '" << tenant << "' (id " << *tenant_id
        << ") on " << host << ":" << *port << "\n";
    Result<std::unique_ptr<WireLoadTarget>> target =
        WireLoadTarget::Create(host, static_cast<uint16_t>(*port), tenant);
    if (!target.ok()) return Fail(err, target.status());
    report = RunLoadGenOn(target->get(), load);
    if (!report.ok()) return Fail(err, report.status());
    Result<std::vector<std::pair<std::string, std::string>>> remote =
        admin->Stats(tenant);
    if (remote.ok()) {
      for (const auto& [key, value] : *remote) {
        const auto parsed = ToInt(value);
        if (!parsed) continue;
        const uint64_t v = static_cast<uint64_t>(*parsed);
        if (key == "memo_hits") memo_hits = v;
        if (key == "memo_misses") memo_misses = v;
        if (key == "batches_executed") batches_executed = v;
        if (key == "batched_queries") batched_queries = v;
      }
    }
  } else {
    if (auto rc = ApplyServeObsFlags(flags, &options, err)) return *rc;
    if (flags.ReportUnused(err)) return 2;
    Result<std::unique_ptr<Server>> created = Server::Create(
        ProductCostFunction::ReciprocalSum(options.dims, 1e-3), options);
    if (!created.ok()) return Fail(err, created.status());
    server = std::move(created).value();
  }
  LogSinkCloser log_closer;
  if (server != nullptr) {
    // SIGUSR1 during the run dumps the flight recorder to --flight-out
    // without pausing admission — the CI live-dump demo drives this.
    SignalDumpScope dump_scope(server.get());
    report = RunLoadGen(server.get(), load);
    if (!report.ok()) return Fail(err, report.status());
    const ServeStats stats = server->stats();
    memo_hits = stats.memo_hits;
    memo_misses = stats.memo_misses;
    batches_executed = stats.batches_executed;
    batched_queries = stats.batched_queries;
  }

  const uint64_t probes = memo_hits + memo_misses;
  err.precision(4);
  err << "# load-gen: " << report->queries_ok << " queries ok ("
      << report->queries_rejected << " rejected, "
      << report->queries_timed_out << " timed out, "
      << report->queries_failed << " failed), " << report->updates_applied
      << " updates in " << report->wall_seconds << " s\n"
      << "# load-gen: offered=" << report->offered_qps
      << " qps achieved=" << report->achieved_qps << " qps ("
      << report->achieved_qps / static_cast<double>(*threads)
      << " qps/core), p50=" << report->latency_p50_seconds * 1e3
      << " ms p99=" << report->latency_p99_seconds * 1e3 << " ms\n"
      << "# load-gen: memo hits=" << memo_hits << "/" << probes
      << " batches=" << batches_executed
      << " batched_queries=" << batched_queries << "\n";

  std::ostringstream json;
  json.precision(12);
  json << "{\n"
       << "  \"config\": {\"dims\": " << options.dims
       << ", \"clients\": " << load.clients
       << ", \"query_threads\": " << options.query_threads
       << ", \"shards\": " << options.shards
       << ", \"shard_query_threads\": " << options.shard_query_threads
       << ", \"duration_seconds\": " << load.duration_seconds
       << ", \"target_qps\": " << load.target_qps
       << ", \"query_fraction\": " << load.query_fraction
       << ", \"k\": " << load.k
       << ", \"preload_competitors\": " << load.preload_competitors
       << ", \"preload_products\": " << load.preload_products
       << ", \"batch_max\": " << options.batch_max
       << ", \"batch_wait_us\": " << options.batch_wait_us
       << ", \"memo_cache_mb\": " << options.memo_cache_mb
       << ", \"connect\": " << (connect.has_value() ? "true" : "false")
       << ", \"seed\": " << load.seed << "},\n"
       << "  \"wall_seconds\": " << report->wall_seconds << ",\n"
       << "  \"offered_qps\": " << report->offered_qps << ",\n"
       << "  \"achieved_qps\": " << report->achieved_qps << ",\n"
       << "  \"achieved_qps_per_core\": "
       << report->achieved_qps / static_cast<double>(*threads) << ",\n"
       << "  \"queries_ok\": " << report->queries_ok << ",\n"
       << "  \"queries_rejected\": " << report->queries_rejected << ",\n"
       << "  \"queries_timed_out\": " << report->queries_timed_out << ",\n"
       << "  \"queries_failed\": " << report->queries_failed << ",\n"
       << "  \"updates_applied\": " << report->updates_applied << ",\n"
       << "  \"updates_rejected\": " << report->updates_rejected << ",\n"
       << "  \"latency_p50_seconds\": " << report->latency_p50_seconds
       << ",\n"
       << "  \"latency_p95_seconds\": " << report->latency_p95_seconds
       << ",\n"
       << "  \"latency_p99_seconds\": " << report->latency_p99_seconds
       << ",\n"
       << "  \"latency_max_seconds\": " << report->latency_max_seconds
       << ",\n"
       << "  \"memo_hits\": " << memo_hits << ",\n"
       << "  \"memo_misses\": " << memo_misses << ",\n"
       << "  \"batches_executed\": " << batches_executed << ",\n"
       << "  \"batched_queries\": " << batched_queries << "\n"
       << "}\n";
  if (out_path.has_value()) {
    std::ofstream file(*out_path);
    if (!file) {
      return Fail(err, Status::IOError("cannot open '" + *out_path + "'"));
    }
    file << json.str();
  } else {
    out << json.str();
  }

  if (metrics_path.has_value() && server != nullptr) {
    MetricsRegistry registry;
    server->FillMetrics(&registry);
    std::ofstream metrics_file(*metrics_path);
    if (!metrics_file) {
      return Fail(err, Status::IOError("cannot open '" + *metrics_path +
                                       "' for writing"));
    }
    const bool json_metrics =
        metrics_path->size() >= 5 &&
        metrics_path->compare(metrics_path->size() - 5, 5, ".json") == 0;
    if (json_metrics) {
      registry.WriteJson(metrics_file);
    } else {
      registry.WritePrometheus(metrics_file);
    }
  }
  if (server != nullptr) return FinishServeObs(server.get(), options, err);
  return 0;
}

// serve --listen=PORT: the multi-tenant network front door. Blocks until
// a `shutdown` command arrives over the wire.
int CmdServeListen(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto listen = ToInt(flags.GetOr("listen", "0"));
  const auto threads = ToInt(flags.GetOr("threads", "2"));
  const auto quota = ToInt(flags.GetOr("quota", "64"));
  const auto threshold = ToInt(flags.GetOr("rebuild-threshold", "1024"));
  const auto batch_max = ToInt(flags.GetOr("batch-max", "16"));
  const auto batch_wait = ToInt(flags.GetOr("batch-wait-us", "200"));
  const auto memo_mb = ToInt(flags.GetOr("memo-cache-mb", "16"));
  if (!listen || !threads || !quota || !threshold || !batch_max ||
      !batch_wait || !memo_mb || *listen < 0 || *listen > 65535 ||
      *threads < 1 || *quota < 1 || *threshold < 1 || *batch_max < 1 ||
      *batch_wait < 0 || *memo_mb < 0) {
    return Usage(err, "serve --listen: malformed numeric flag");
  }

  FrontDoorOptions options;
  options.port = static_cast<uint16_t>(*listen);
  options.tenant_base.dims = 1;  // per-tenant `create` overrides
  options.tenant_base.query_threads = static_cast<size_t>(*threads);
  options.tenant_base.max_pending = static_cast<size_t>(*quota);
  options.tenant_base.rebuild_threshold_ops = static_cast<size_t>(*threshold);
  options.tenant_base.batch_max = static_cast<size_t>(*batch_max);
  options.tenant_base.batch_wait_us = static_cast<size_t>(*batch_wait);
  options.tenant_base.memo_cache_mb = static_cast<size_t>(*memo_mb);
  if (auto rc = ApplyServeObsFlags(flags, &options.tenant_base, err)) {
    return *rc;
  }
  LogSinkCloser log_closer;
  if (flags.ReportUnused(err)) return 2;

  Result<std::unique_ptr<FrontDoor>> door = FrontDoor::Start(options);
  if (!door.ok()) return Fail(err, door.status());
  // The port line is the startup handshake: harnesses parse it to learn
  // an ephemeral port, so it must flush before the blocking wait.
  out << "# serve: listening on 127.0.0.1:" << (*door)->port() << std::endl;
  (*door)->WaitForShutdown();
  const std::vector<std::string> tenants = (*door)->registry().Names();
  (*door)->Stop();
  err << "# serve: shutdown after serving " << tenants.size()
      << " tenant(s)";
  for (const std::string& name : tenants) err << " " << name;
  err << "\n";
  return 0;
}

int CmdServe(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto gen_path = flags.Get("gen-ops");
  const auto replay_path = flags.Get("replay");
  const bool load_gen = flags.Get("load-gen").has_value();
  const bool listen = flags.Get("listen").has_value();
  const int modes = (gen_path.has_value() ? 1 : 0) +
                    (replay_path.has_value() ? 1 : 0) + (load_gen ? 1 : 0) +
                    (listen ? 1 : 0);
  if (modes != 1) {
    return Usage(err,
                 "serve requires exactly one of --replay, --gen-ops, "
                 "--load-gen, --listen");
  }
  if (load_gen) return CmdServeLoadGen(flags, out, err);
  if (listen) return CmdServeListen(flags, out, err);

  if (gen_path.has_value()) {
    const auto ops = ToInt(flags.GetOr("ops", "1000"));
    const auto dims = ToInt(flags.GetOr("dims", "3"));
    const auto seed = ToInt(flags.GetOr("seed", "1"));
    if (!ops || !dims || !seed || *ops <= 0 || *dims <= 0) {
      return Usage(err, "serve: malformed numeric flag");
    }
    if (flags.ReportUnused(err)) return 2;
    std::ofstream file(*gen_path);
    if (!file) {
      return Fail(err,
                  Status::IOError("cannot open '" + *gen_path + "'"));
    }
    Status generated =
        GenerateWorkload(static_cast<uint64_t>(*seed),
                         static_cast<size_t>(*ops),
                         static_cast<size_t>(*dims), file);
    if (!generated.ok()) return Fail(err, generated);
    out << "wrote " << *ops << " ops (dims=" << *dims << ", seed=" << *seed
        << ") to " << *gen_path << "\n";
    return 0;
  }

  const auto epsilon = ToDouble(flags.GetOr("epsilon", "1e-6"));
  const auto fanout = ToInt(flags.GetOr("fanout", "64"));
  const auto shards = ToInt(flags.GetOr("shards", "0"));
  const auto threshold = ToInt(flags.GetOr("rebuild-threshold", "64"));
  const auto min_backlog = ToInt(flags.GetOr("min-publish-backlog", "1"));
  const auto tombstone_pct = ToInt(flags.GetOr("compact-tombstone-pct", "50"));
  const auto tail_pct = ToInt(flags.GetOr("compact-tail-pct", "150"));
  const auto batch_max = ToInt(flags.GetOr("batch-max", "1"));
  const auto batch_wait = ToInt(flags.GetOr("batch-wait-us", "200"));
  const auto memo_mb = ToInt(flags.GetOr("memo-cache-mb", "16"));
  const auto out_path = flags.Get("out");
  const auto metrics_path = flags.Get("metrics-out");
  if (!epsilon || !fanout || !shards || !threshold || !min_backlog ||
      !tombstone_pct || !tail_pct || !batch_max || !batch_wait || !memo_mb ||
      *epsilon <= 0 || *fanout < 2 || *shards < 0 || *threshold < 1 ||
      *min_backlog < 1 || *tombstone_pct < 1 || *tail_pct < 1 ||
      *batch_max < 1 || *batch_wait < 0 || *memo_mb < 0) {
    return Usage(err, "serve: malformed numeric flag");
  }

  Result<ReplayWorkload> workload = ReadWorkloadFile(*replay_path);
  if (!workload.ok()) return Fail(err, workload.status());

  ServerOptions options;
  options.dims = workload->dims;
  options.shards = static_cast<size_t>(*shards);
  options.default_epsilon = *epsilon;
  options.rtree_fanout = static_cast<size_t>(*fanout);
  options.rebuild_threshold_ops = static_cast<size_t>(*threshold);
  options.publish_min_backlog = static_cast<size_t>(*min_backlog);
  options.compact_tombstone_pct = static_cast<size_t>(*tombstone_pct);
  options.compact_tail_pct = static_cast<size_t>(*tail_pct);
  options.batch_max = static_cast<size_t>(*batch_max);
  options.batch_wait_us = static_cast<size_t>(*batch_wait);
  options.memo_cache_mb = static_cast<size_t>(*memo_mb);
  options.background_rebuild = false;  // replay must be deterministic
  options.query_threads = 1;
  if (auto rc = ApplyServeObsFlags(flags, &options, err)) return *rc;
  LogSinkCloser log_closer;
  if (flags.ReportUnused(err)) return 2;
  Result<std::unique_ptr<Server>> server = Server::Create(
      ProductCostFunction::ReciprocalSum(workload->dims, 1e-3), options);
  if (!server.ok()) return Fail(err, server.status());
  SignalDumpScope dump_scope(server->get());

  std::ofstream result_file;
  if (out_path.has_value()) {
    result_file.open(*out_path);
    if (!result_file) {
      return Fail(err, Status::IOError("cannot open '" + *out_path + "'"));
    }
  }
  std::ostream& results = out_path.has_value() ? result_file : out;
  Result<ReplayReport> report = Replay(server->get(), *workload, results);
  if (!report.ok()) return Fail(err, report.status());

  err << "# replay: " << workload->ops.size() << " ops ("
      << report->inserts_p << " +P, " << report->inserts_t << " +T, "
      << report->erases_p << " -P, " << report->erases_t << " -T, "
      << report->queries << " queries) in "
      << static_cast<long long>(report->wall_seconds * 1e6) << " us\n"
      << "# replay: final epoch=" << report->final_epoch
      << " backlog=" << report->final_backlog << " rebuilds="
      << (*server)->stats().rebuilds_published << " patches="
      << (*server)->stats().patches_published << " fallback_scans="
      << (*server)->stats().erase_fallback_scans << "\n"
      << "# replay: memo hits=" << (*server)->stats().memo_hits << "/"
      << ((*server)->stats().memo_hits + (*server)->stats().memo_misses)
      << " batches=" << (*server)->stats().batches_executed
      << " batched_queries=" << (*server)->stats().batched_queries << "\n";

  if (metrics_path.has_value()) {
    MetricsRegistry registry;
    (*server)->FillMetrics(&registry);
    std::ofstream metrics_file(*metrics_path);
    if (!metrics_file) {
      return Fail(err, Status::IOError("cannot open '" + *metrics_path +
                                       "' for writing"));
    }
    const bool json = metrics_path->size() >= 5 &&
                      metrics_path->compare(metrics_path->size() - 5, 5,
                                            ".json") == 0;
    if (json) {
      registry.WriteJson(metrics_file);
    } else {
      registry.WritePrometheus(metrics_file);
    }
  }
  return FinishServeObs(server->get(), options, err);
}

}  // namespace

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  std::optional<Flags> flags = Flags::Parse(args, 1, err);
  if (!flags.has_value()) return 2;

  if (command == "generate") return CmdGenerate(*flags, out, err);
  if (command == "wine") return CmdWine(*flags, out, err);
  if (command == "skyline") return CmdSkyline(*flags, out, err);
  if (command == "topk") return CmdTopK(*flags, out, err);
  if (command == "serve") return CmdServe(*flags, out, err);
  return Usage(err, "unknown command '" + command + "'");
}

}  // namespace cli
}  // namespace skyup
