#ifndef SKYUP_CLI_CLI_H_
#define SKYUP_CLI_CLI_H_

// The `skyup` command-line tool: workload generation, skyline queries, and
// top-k product upgrading over CSV files. The driver is a library function
// so tests can run commands against in-memory streams.
//
//   skyup generate --out=P.csv --count=100000 --dims=3 --dist=anti
//   skyup wine     --out=wine.csv
//   skyup skyline  --in=P.csv --algo=sfs
//   skyup topk     --competitors=P.csv --products=T.csv --k=5
//                  --algorithm=join --lb=clb
//
// CSV files are headerless numeric tables, one product per row.

#include <ostream>
#include <string>
#include <vector>

namespace skyup {
namespace cli {

/// Executes one CLI invocation. `args` excludes the program name. Normal
/// output goes to `out`, diagnostics to `err`. Returns a process exit
/// code (0 on success, 2 on usage errors, 1 on runtime failures).
int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace cli
}  // namespace skyup

#endif  // SKYUP_CLI_CLI_H_
