#ifndef SKYUP_SKYLINE_INCREMENTAL_H_
#define SKYUP_SKYLINE_INCREMENTAL_H_

// Incremental skyline maintenance: patch an existing skyline under point
// insertion instead of re-reducing the whole candidate set. The serving
// overlay (src/serve/query.cc) starts from the index probe's skyline of
// live dominators and folds in pending inserts one at a time; the result
// is the same *value set* SkylineOfPointers (skyline/sfs.cc) would return
// over the union — one representative per distinct coordinate vector,
// mutually non-dominating — which is all downstream consumers depend on.

#include <cstddef>
#include <vector>

namespace skyup {

/// Folds point `q` into `skyline` (a set of mutually non-dominating,
/// deduplicated coordinate pointers): drops `q` when some member
/// dominates-or-equals it, otherwise evicts every member `q` dominates
/// and appends `q`. Order of survivors is preserved (stable compaction).
/// Returns true iff `q` joined the skyline. O(|skyline| * dims).
bool PatchSkylineInsert(std::vector<const double*>* skyline, const double* q,
                        size_t dims);

}  // namespace skyup

#endif  // SKYUP_SKYLINE_INCREMENTAL_H_
