#include <algorithm>
#include <numeric>
#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "skyline/skyline.h"
#include "util/check.h"

namespace skyup {

namespace {

double CoordSum(const double* p, size_t dims) {
  double sum = 0.0;
  for (size_t i = 0; i < dims; ++i) sum += p[i];
  return sum;
}

}  // namespace

std::vector<PointId> SkylineSfs(const Dataset& data,
                                const std::vector<PointId>* subset) {
  const size_t dims = data.dims();
  std::vector<PointId> order;
  if (subset != nullptr) {
    order = *subset;
  } else {
    order.resize(data.size());
    std::iota(order.begin(), order.end(), PointId{0});
  }

  // Sorting by a monotone score (the coordinate sum) guarantees that any
  // dominator of a point precedes it, so one pass over the order suffices
  // and accepted points are final.
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    const double sa = CoordSum(data.data(a), dims);
    const double sb = CoordSum(data.data(b), dims);
    if (sa != sb) return sa < sb;
    return a < b;
  });

  // The accepted window lives in one SoA block so each candidate is tested
  // against all current members with a single batched kernel sweep.
  std::vector<PointId> skyline;
  SoaBlock window(dims);
  for (PointId id : order) {
    const double* p = data.data(id);
    if (!window.empty() && DominatesAny(window.view(), p)) continue;
    window.Append(p);
    skyline.push_back(id);
  }
  SKYUP_PARANOID_OK(CheckSkylineInvariants(data, subset, skyline));
  return skyline;
}

void SkylineOfPointers(std::vector<const double*>* points, size_t dims) {
  std::sort(points->begin(), points->end(),
            [dims](const double* a, const double* b) {
              const double sa = CoordSum(a, dims);
              const double sb = CoordSum(b, dims);
              if (sa != sb) return sa < sb;
              return a < b;  // deterministic tie-break on address
            });
  SoaBlock window(dims);
  size_t kept = 0;
  for (size_t i = 0; i < points->size(); ++i) {
    const double* p = (*points)[i];
    if (!window.empty() && DominatesAny(window.view(), p)) continue;
    window.Append(p);
    (*points)[kept++] = p;
  }
  points->resize(kept);
}

}  // namespace skyup
