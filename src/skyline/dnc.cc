#include <algorithm>
#include <vector>

#include "core/dominance.h"
#include "skyline/skyline.h"
#include "util/logging.h"

namespace skyup {

namespace {

// Removes from `losers` every id dominated by (or equal to) some id in
// `winners`; both sets are skylines of disjoint halves after a split on
// the median of one dimension.
void FilterDominated(const Dataset& data, const std::vector<PointId>& winners,
                     std::vector<PointId>* losers) {
  const size_t dims = data.dims();
  size_t kept = 0;
  for (PointId candidate : *losers) {
    const double* p = data.data(candidate);
    bool dominated = false;
    for (PointId w : winners) {
      if (DominatesOrEqual(data.data(w), p, dims)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) (*losers)[kept++] = candidate;
  }
  losers->resize(kept);
}

// Basic divide & conquer (Börzsönyi et al. / Kung et al.): split on the
// median of `dim`, recurse, then remove from the "worse" half everything
// dominated by the "better" half's skyline.
std::vector<PointId> DncRecurse(const Dataset& data,
                                std::vector<PointId> ids, size_t dim) {
  constexpr size_t kBaseCase = 32;
  if (ids.size() <= kBaseCase) {
    return SkylineBnl(data, &ids);
  }

  const size_t dims = data.dims();
  const size_t mid = ids.size() / 2;
  std::nth_element(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(mid),
                   ids.end(), [&](PointId a, PointId b) {
                     const double va = data.data(a)[dim];
                     const double vb = data.data(b)[dim];
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  std::vector<PointId> low(ids.begin(),
                           ids.begin() + static_cast<ptrdiff_t>(mid));
  std::vector<PointId> high(ids.begin() + static_cast<ptrdiff_t>(mid),
                            ids.end());
  ids.clear();
  ids.shrink_to_fit();

  const size_t next_dim = (dim + 1) % dims;
  std::vector<PointId> sky_low = DncRecurse(data, std::move(low), next_dim);
  std::vector<PointId> sky_high = DncRecurse(data, std::move(high), next_dim);

  // Points in the low half can dominate points in the high half (their
  // `dim` values are <=), never the other way around on that dimension
  // alone — but cross-dimension domination is possible in both directions
  // for the remaining dimensions, so the merge checks the high half
  // against the low skyline (the classic simplification remains correct
  // because low-half points have `dim` values <= every high-half point,
  // hence a high-half point can only dominate a low-half point if it ties
  // on `dim`; those ties end up filtered by the final BNL pass).
  FilterDominated(data, sky_low, &sky_high);

  std::vector<PointId> merged = std::move(sky_low);
  merged.insert(merged.end(), sky_high.begin(), sky_high.end());
  // Median ties can leave equal-on-`dim` cross pairs unchecked; one cheap
  // BNL pass over the (small) merged candidate set settles them exactly.
  return SkylineBnl(data, &merged);
}

}  // namespace

std::vector<PointId> SkylineDnc(const Dataset& data,
                                const std::vector<PointId>* subset) {
  std::vector<PointId> ids;
  if (subset != nullptr) {
    ids = *subset;
  } else {
    ids.resize(data.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  }
  if (ids.empty()) return ids;
  SKYUP_CHECK(data.dims() >= 1);
  // The paranoid postcondition runs once over the original input, not per
  // recursion level; the input copy it needs is folded away below paranoid.
  if constexpr (kCheckLevel >= 2) {
    std::vector<PointId> input = ids;
    std::vector<PointId> result = DncRecurse(data, std::move(ids), 0);
    SKYUP_PARANOID_OK(CheckSkylineInvariants(data, &input, result));
    return result;
  }
  return DncRecurse(data, std::move(ids), 0);
}

}  // namespace skyup
