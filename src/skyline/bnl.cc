#include <vector>

#include "core/dominance.h"
#include "skyline/skyline.h"
#include "util/check.h"

namespace skyup {

std::vector<PointId> SkylineBnl(const Dataset& data,
                                const std::vector<PointId>* subset) {
  const size_t dims = data.dims();
  std::vector<PointId> window;
  auto consider = [&](PointId id) {
    const double* p = data.data(id);
    size_t keep = 0;
    bool dominated = false;
    for (size_t i = 0; i < window.size(); ++i) {
      const double* w = data.data(window[i]);
      if (!dominated && DominatesOrEqual(w, p, dims)) {
        // p is dominated by (or duplicates) a window point: window is
        // unchanged, p is dropped.
        dominated = true;
        keep = window.size();
        break;
      }
      if (!Dominates(p, w, dims)) {
        window[keep++] = window[i];
      }
    }
    if (dominated) return;
    window.resize(keep);
    window.push_back(id);
  };

  if (subset != nullptr) {
    for (PointId id : *subset) consider(id);
  } else {
    for (size_t i = 0; i < data.size(); ++i) {
      consider(static_cast<PointId>(i));
    }
  }
  SKYUP_PARANOID_OK(CheckSkylineInvariants(data, subset, window));
  return window;
}

bool IsDominated(const Dataset& data, PointId id) {
  const size_t dims = data.dims();
  const double* p = data.data(id);
  for (size_t i = 0; i < data.size(); ++i) {
    if (static_cast<PointId>(i) == id) continue;
    if (Dominates(data.data(static_cast<PointId>(i)), p, dims)) return true;
  }
  return false;
}

}  // namespace skyup
