#include "skyline/incremental.h"

#include "core/dominance.h"

namespace skyup {

bool PatchSkylineInsert(std::vector<const double*>* skyline, const double* q,
                        size_t dims) {
  // Pass 1: q loses to (or duplicates) an existing member — no change.
  // Members are mutually non-dominating, so losing to one settles it.
  for (const double* s : *skyline) {
    if (DominatesOrEqual(s, q, dims)) return false;
  }
  // Pass 2: q joins; evict members it dominates. Equality is impossible
  // here (pass 1 would have caught it), so DominatesOrEqual doubles as a
  // strict test while keeping the comparison count at one per member.
  size_t w = 0;
  for (size_t r = 0; r < skyline->size(); ++r) {
    if (DominatesOrEqual(q, (*skyline)[r], dims)) continue;
    (*skyline)[w++] = (*skyline)[r];
  }
  skyline->resize(w);
  skyline->push_back(q);
  return true;
}

}  // namespace skyup
