#ifndef SKYUP_SKYLINE_DOMINATING_SKYLINE_H_
#define SKYUP_SKYLINE_DOMINATING_SKYLINE_H_

#include <vector>

#include "core/point.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"

namespace skyup {

/// Counters for one constrained-skyline probe (Algorithm 3).
struct ProbeStats {
  size_t heap_pops = 0;
  size_t nodes_visited = 0;
  size_t points_scanned = 0;
  /// Batched dominance-kernel invocations (core/dominance_batch.h): window
  /// prunes, leaf filters, and child culls. Zero on the single-root pointer
  /// probe, which is deliberately kept scalar as the baseline/oracle; makes
  /// the flat/batched traversal observable end to end.
  size_t block_kernel_calls = 0;
};

/// `getDominatingSky` (Algorithm 3 of the paper): the skyline of the set of
/// points in `tree` that strictly dominate `t`, computed by a best-first
/// (BBS-style) traversal constrained to the anti-dominant region ADR(t).
///
/// `t` must have `tree.dataset().dims()` coordinates. The returned ids are
/// mutually non-dominating, every one strictly dominates `t`, and together
/// they dominate every dominator of `t` in the tree — exactly the input
/// Algorithm 1 (single-product upgrade) requires.
std::vector<PointId> DominatingSkyline(const RTree& tree, const double* t,
                                       ProbeStats* stats = nullptr);

/// The same probe over the flat arena snapshot: identical results (bit for
/// bit — same entries, same best-first order, same tie-breaks), but node
/// expansion culls children with the batched SoA kernels and the dominance
/// window lives in one SoA block instead of scattered rows. Tombstoned
/// slots and fully-dead subtrees are skipped, so the result is the skyline
/// of the *live* dominators.
std::vector<PointId> DominatingSkyline(const FlatRTree& tree, const double* t,
                                       ProbeStats* stats = nullptr);

/// Allocation-free, mask-aware form for hot serving loops. Appends nothing;
/// `result` is cleared and filled in best-first accept order. `dead_rows`,
/// when non-null, is a per-dataset-row byte mask (1 = treat as erased)
/// composed on top of the index's own tombstones — masked points never
/// enter the traversal's dominance window, so live dominators they would
/// have masked are still found (no caller-side rescan needed).
void DominatingSkylineInto(const FlatRTree& tree, const double* t,
                           const uint8_t* dead_rows,
                           std::vector<PointId>* result,
                           ProbeStats* stats = nullptr);

/// Tile probe: runs up to `kMaxDominanceTile` constrained-skyline probes as
/// ONE best-first traversal that shares node fetches. Heap entries carry a
/// bitmask of the tile members they are still relevant for; each fetched MBR
/// or point block is tested against the whole tile with one
/// `TileDominanceMasks` sweep, and per-member dominance windows prune the
/// mask independently. `results[j]` receives what `DominatingSkylineInto`
/// would produce for `tile[j]` as a *value set*: the same mutually
/// non-dominating dominator values, with only the accept order of equal-key
/// members (and the choice of representative among coordinate-duplicate
/// rows) possibly differing — distinctions every downstream consumer
/// (`UpgradeProduct` after value-canonical sorting, `PatchSkylineInsert`)
/// is invariant to. `tile[j]` must have `tree.dims()` coordinates;
/// `results` must hold `tile_count` vectors (each is cleared). Stats are
/// whole-traversal counts, not per-member sums.
void DominatingSkylineTileInto(const FlatRTree& tree,
                               const double* const* tile, size_t tile_count,
                               const uint8_t* dead_rows,
                               std::vector<PointId>* results,
                               ProbeStats* stats = nullptr);

/// Multi-source variant used by the join's leaf processing (Alg. 4 line 9):
/// the skyline of the dominators of `t` among the points below `roots`
/// plus the explicit `points`, all referring to `data`. Same best-first,
/// skyline-pruned traversal as `DominatingSkyline`, seeded from several
/// entries at once. Window pruning runs on the batched kernels.
std::vector<PointId> DominatingSkylineFrom(
    const Dataset& data, const std::vector<const RTreeNode*>& roots,
    const std::vector<PointId>& points, const double* t,
    ProbeStats* stats = nullptr);

}  // namespace skyup

#endif  // SKYUP_SKYLINE_DOMINATING_SKYLINE_H_
