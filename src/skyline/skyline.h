#ifndef SKYUP_SKYLINE_SKYLINE_H_
#define SKYUP_SKYLINE_SKYLINE_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/point.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

/// Skyline algorithms provided by the substrate.
///
/// All of them use the minimize orientation and return one representative
/// per distinct coordinate vector (exact duplicates of a skyline point are
/// dropped), so results satisfy the mutual non-domination precondition of
/// the upgrade routine.
enum class SkylineAlgorithm {
  kBnl,  ///< block-nested-loops [Börzsönyi et al.]
  kSfs,  ///< sort-filter skyline (presort by monotone score) [Chomicki et al.]
  kBbs,  ///< branch-and-bound on an R-tree [Papadias et al.]
  kDnc,  ///< divide & conquer on a median split [Börzsönyi et al.]
};

/// Block-nested-loops skyline of the whole dataset, or of `subset` if given.
std::vector<PointId> SkylineBnl(const Dataset& data,
                                const std::vector<PointId>* subset = nullptr);

/// Sort-filter skyline: presorts by coordinate sum, after which a point can
/// only be dominated by already-accepted points. O(n log n + n * |SKY| * d).
std::vector<PointId> SkylineSfs(const Dataset& data,
                                const std::vector<PointId>* subset = nullptr);

/// Branch-and-bound skyline over an R-tree (best-first by min-corner sum).
std::vector<PointId> SkylineBbs(const RTree& tree);

/// BBS over the flat arena snapshot (rtree/flat_rtree.h): identical result
/// order, batched SoA dominance tests. The `Skyline` dispatcher routes
/// `kBbs` through this form.
std::vector<PointId> SkylineBbs(const FlatRTree& tree);

/// Divide & conquer skyline: median split on rotating dimensions, merge by
/// cross-filtering the halves' skylines. O(n log^(d-1) n)-flavored.
std::vector<PointId> SkylineDnc(const Dataset& data,
                                const std::vector<PointId>* subset = nullptr);

/// Dispatches on `algo`; `kBbs` bulk-loads a temporary R-tree.
std::vector<PointId> Skyline(const Dataset& data, SkylineAlgorithm algo);

/// In-place skyline over raw coordinate pointers (SFS strategy): on return
/// `*points` holds exactly the distinct skyline members. Used on transient
/// dominator sets by the probing and join algorithms.
void SkylineOfPointers(std::vector<const double*>* points, size_t dims);

/// True iff point `id` is strictly dominated by some other point of `data`.
/// (A duplicate of another point is *not* dominated.) O(n d) scan; intended
/// for dataset preparation and tests, not for hot paths.
bool IsDominated(const Dataset& data, PointId id);

/// Re-proves the skyline definition over `subset` (or the whole dataset):
/// members mutually incomparable and distinct, every input point covered by
/// a member. O(|in| * |SKY| * d). This is the postcondition every skyline
/// algorithm asserts under SKYUP_PARANOID_OK; also usable from tests and
/// fuzz oracles directly.
Status CheckSkylineInvariants(const Dataset& data,
                              const std::vector<PointId>* subset,
                              const std::vector<PointId>& skyline);

}  // namespace skyup

#endif  // SKYUP_SKYLINE_SKYLINE_H_
