#include "skyline/dominating_skyline.h"

#include <queue>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"

namespace skyup {

namespace {

struct Entry {
  double key;
  uint64_t seq;
  const RTreeNode* node;
  PointId point;

  bool operator>(const Entry& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

// An R-tree entry can intersect ADR(t) = (-inf, t] iff its min corner is
// coordinatewise <= t.
bool OverlapsAdr(const double* min_corner, const double* t, size_t dims) {
  return DominatesOrEqual(min_corner, t, dims);
}

bool PrunedBySkyline(const std::vector<const double*>& window,
                     const double* min_corner, size_t dims) {
  for (const double* s : window) {
    if (DominatesOrEqual(s, min_corner, dims)) return true;
  }
  return false;
}

// Batched window prune: true iff some accepted skyline member dominates-or-
// equals `p` (a point or an MBR min corner). Counts one kernel call even
// for the empty window, so the counter tracks prune *sites*, not sizes.
bool PrunedBySkyline(const SoaBlock& window, const double* p,
                     ProbeStats* st) {
  ++st->block_kernel_calls;
  return !window.empty() && DominatesAny(window.view(), p);
}

// Paranoid per-probe postcondition: every returned member strictly
// dominates the probe point, and no member dominates-or-equals another.
// (Deliberately does NOT re-validate the index per probe — that is hoisted
// to the top-k entry points, where it runs once instead of once per
// product.)
Status CheckProbeResult(const Dataset& data, const double* t,
                        const std::vector<PointId>& result) {
  const size_t dims = data.dims();
  for (PointId id : result) {
    if (!Dominates(data.data(id), t, dims)) {
      return Status::Internal("probe member " + std::to_string(id) +
                              " does not dominate the probe point");
    }
  }
  for (size_t i = 0; i < result.size(); ++i) {
    for (size_t j = 0; j < result.size(); ++j) {
      if (i == j) continue;
      if (DominatesOrEqual(data.data(result[i]), data.data(result[j]), dims)) {
        return Status::Internal(
            "probe members " + std::to_string(result[i]) + " and " +
            std::to_string(result[j]) + " are not mutually incomparable");
      }
    }
  }
  return Status::OK();
}

}  // namespace

// The pointer-tree probe is deliberately kept on the seed's scalar
// point-pair loops: it is the unbatched baseline the flat/batched traversal
// below is benchmarked against (bench_micro) and verified bit-identical to
// (tests/flat_index_test.cc).
std::vector<PointId> DominatingSkyline(const RTree& tree, const double* t,
                                       ProbeStats* stats) {
  SKYUP_TRACE_SPAN_VERBOSE("probe/dominating-skyline");
  std::vector<PointId> result;
  if (tree.empty()) return result;
  const Dataset& data = tree.dataset();
  const size_t dims = data.dims();
  ProbeStats local;
  ProbeStats* st = stats != nullptr ? stats : &local;

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  uint64_t seq = 0;
  const RTreeNode* root = tree.root();
  if (root == nullptr || root->entry_count() == 0) return result;
  if (OverlapsAdr(root->mbr.min_data(), t, dims)) {
    heap.push({root->mbr.MinCornerSum(), seq++, root, kInvalidPointId});
  }

  std::vector<const double*> window;
  while (!heap.empty()) {
    const Entry entry = heap.top();
    heap.pop();
    ++st->heap_pops;

    if (entry.node != nullptr) {
      ++st->nodes_visited;
      if (PrunedBySkyline(window, entry.node->mbr.min_data(), dims)) continue;
      if (entry.node->is_leaf()) {
        for (PointId id : entry.node->points) {
          const double* p = data.data(id);
          ++st->points_scanned;
          // Only strict dominators of t are candidates; a point equal to t
          // does not dominate it.
          if (!Dominates(p, t, dims)) continue;
          if (PrunedBySkyline(window, p, dims)) continue;
          double key = 0.0;
          for (size_t i = 0; i < dims; ++i) key += p[i];
          heap.push({key, seq++, nullptr, id});
        }
      } else {
        for (const auto& child : entry.node->children) {
          if (!OverlapsAdr(child->mbr.min_data(), t, dims)) continue;
          if (PrunedBySkyline(window, child->mbr.min_data(), dims)) continue;
          heap.push(
              {child->mbr.MinCornerSum(), seq++, child.get(), kInvalidPointId});
        }
      }
    } else {
      const double* p = data.data(entry.point);
      if (PrunedBySkyline(window, p, dims)) continue;
      window.push_back(p);
      result.push_back(entry.point);
    }
  }
  SKYUP_PARANOID_OK(CheckProbeResult(data, t, result));
  return result;
}

std::vector<PointId> DominatingSkyline(const FlatRTree& tree, const double* t,
                                       ProbeStats* stats) {
  std::vector<PointId> result;
  DominatingSkylineInto(tree, t, /*dead_rows=*/nullptr, &result, stats);
  return result;
}

void DominatingSkylineInto(const FlatRTree& tree, const double* t,
                           const uint8_t* dead_rows,
                           std::vector<PointId>* result, ProbeStats* stats) {
  SKYUP_TRACE_SPAN_VERBOSE("probe/dominating-skyline-flat");
  result->clear();
  if (tree.empty() || tree.live_size() == 0) return;
  const size_t dims = tree.dims();
  ProbeStats local;
  ProbeStats* st = stats != nullptr ? stats : &local;
  // With no tombstones and no mask every liveness test below passes, so
  // the traversal — entries, order, tie-breaks, and the stat counters —
  // is identical to the historical all-live probe (the property the
  // flat-vs-pointer bit-exactness tests pin down).
  const bool masked = dead_rows != nullptr || tree.has_tombstones();

  // Point entries carry node == kNoNode; the key/seq ordering matches the
  // pointer-tree probe entry for entry, so the two traversals pop — and
  // therefore accept — in the same sequence.
  constexpr uint32_t kNoNode = UINT32_MAX;
  struct FlatEntry {
    double key;
    uint64_t seq;
    uint32_t node;
    PointId point;
    bool operator>(const FlatEntry& other) const {
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  std::priority_queue<FlatEntry, std::vector<FlatEntry>,
                      std::greater<FlatEntry>>
      heap;
  uint64_t seq = 0;
  if (OverlapsAdr(tree.min_corner(FlatRTree::kRoot), t, dims)) {
    heap.push({tree.min_corner_sum(FlatRTree::kRoot), seq++, FlatRTree::kRoot,
               kInvalidPointId});
  }

  SoaBlock window(dims);
  std::vector<uint32_t> kept;  // batch-filter scratch, reused across nodes
  while (!heap.empty()) {
    const FlatEntry entry = heap.top();
    heap.pop();
    ++st->heap_pops;

    if (entry.node != kNoNode) {
      ++st->nodes_visited;
      if (PrunedBySkyline(window, tree.min_corner(entry.node), st)) continue;
      if (tree.is_leaf(entry.node)) {
        const uint32_t b = tree.point_begin(entry.node);
        const uint32_t e = tree.point_end(entry.node);
        st->points_scanned += e - b;
        // One SoA sweep keeps exactly the strict dominators of t, in leaf
        // order (ascending lanes) — the order the scalar loop scans.
        kept.clear();
        ++st->block_kernel_calls;
        FilterDominated(tree.point_block(b, e), t, &kept, /*strict=*/true);
        for (uint32_t lane : kept) {
          const uint32_t slot = b + lane;
          if (masked &&
              (!tree.slot_alive(slot) ||
               (dead_rows != nullptr && dead_rows[tree.point_ids()[slot]]))) {
            continue;
          }
          const double* p = tree.slot_coords(slot);
          if (PrunedBySkyline(window, p, st)) continue;
          double key = 0.0;
          for (size_t i = 0; i < dims; ++i) key += p[i];
          heap.push({key, seq++, kNoNode, tree.point_ids()[slot]});
        }
      } else {
        const uint32_t b = tree.child_begin(entry.node);
        const uint32_t e = tree.child_end(entry.node);
        // ADR overlap over the contiguous child run: min corner <= t
        // (non-strict — equality still overlaps the closed region).
        kept.clear();
        ++st->block_kernel_calls;
        FilterDominated(tree.min_corner_block(b, e), t, &kept,
                        /*strict=*/false);
        for (uint32_t lane : kept) {
          const uint32_t child = b + lane;
          if (masked && tree.node_live_count(child) == 0) continue;
          if (PrunedBySkyline(window, tree.min_corner(child), st)) continue;
          heap.push({tree.min_corner_sum(child), seq++, child,
                     kInvalidPointId});
        }
      }
    } else {
      const double* p = tree.dataset().data(entry.point);
      if (PrunedBySkyline(window, p, st)) continue;
      window.Append(p);
      result->push_back(entry.point);
    }
  }
  SKYUP_PARANOID_OK(CheckProbeResult(tree.dataset(), t, *result));
}

void DominatingSkylineTileInto(const FlatRTree& tree,
                               const double* const* tile, size_t tile_count,
                               const uint8_t* dead_rows,
                               std::vector<PointId>* results,
                               ProbeStats* stats) {
  SKYUP_TRACE_SPAN_VERBOSE("probe/dominating-skyline-tile");
  SKYUP_CHECK(tile_count >= 1 && tile_count <= kMaxDominanceTile)
      << "tile width out of range";
  for (size_t j = 0; j < tile_count; ++j) results[j].clear();
  if (tree.empty() || tree.live_size() == 0) return;
  const size_t dims = tree.dims();
  ProbeStats local;
  ProbeStats* st = stats != nullptr ? stats : &local;
  const bool masked = dead_rows != nullptr || tree.has_tombstones();

  // Same (key, seq) best-first order as the single-query traversal, plus a
  // bitmask of the tile members the entry is still live for. Bits are
  // cleared as per-member windows grow; an entry whose mask empties is
  // dropped without expansion.
  constexpr uint32_t kNoNode = UINT32_MAX;
  struct TileEntry {
    double key;
    uint64_t seq;
    uint32_t node;
    PointId point;
    uint64_t mask;
    bool operator>(const TileEntry& other) const {
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  std::priority_queue<TileEntry, std::vector<TileEntry>,
                      std::greater<TileEntry>>
      heap;
  uint64_t seq = 0;
  {
    uint64_t mask = 0;
    for (size_t j = 0; j < tile_count; ++j) {
      if (OverlapsAdr(tree.min_corner(FlatRTree::kRoot), tile[j], dims)) {
        mask |= uint64_t{1} << j;
      }
    }
    if (mask != 0) {
      heap.push({tree.min_corner_sum(FlatRTree::kRoot), seq++,
                 FlatRTree::kRoot, kInvalidPointId, mask});
    }
  }

  std::vector<SoaBlock> windows;
  windows.reserve(tile_count);
  for (size_t j = 0; j < tile_count; ++j) windows.emplace_back(dims);
  std::vector<uint64_t> lane_masks;  // tile-filter scratch, reused

  // Clears from `mask` every member whose window already dominates `p`.
  auto window_prune = [&](uint64_t mask, const double* p) {
    uint64_t live = 0;
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      const size_t j = static_cast<size_t>(__builtin_ctzll(m));
      if (!PrunedBySkyline(windows[j], p, st)) live |= uint64_t{1} << j;
    }
    return live;
  };

  while (!heap.empty()) {
    const TileEntry entry = heap.top();
    heap.pop();
    ++st->heap_pops;

    if (entry.node != kNoNode) {
      ++st->nodes_visited;
      const uint64_t mask =
          window_prune(entry.mask, tree.min_corner(entry.node));
      if (mask == 0) continue;
      if (tree.is_leaf(entry.node)) {
        const uint32_t b = tree.point_begin(entry.node);
        const uint32_t e = tree.point_end(entry.node);
        st->points_scanned += e - b;
        lane_masks.resize(e - b);
        ++st->block_kernel_calls;
        TileDominanceMasks(tree.point_block(b, e), tile, tile_count,
                           /*strict=*/true, lane_masks.data());
        for (uint32_t lane = 0; lane < e - b; ++lane) {
          uint64_t lm = lane_masks[lane] & mask;
          if (lm == 0) continue;
          const uint32_t slot = b + lane;
          if (masked &&
              (!tree.slot_alive(slot) ||
               (dead_rows != nullptr && dead_rows[tree.point_ids()[slot]]))) {
            continue;
          }
          const double* p = tree.slot_coords(slot);
          lm = window_prune(lm, p);
          if (lm == 0) continue;
          double key = 0.0;
          for (size_t i = 0; i < dims; ++i) key += p[i];
          heap.push({key, seq++, kNoNode, tree.point_ids()[slot], lm});
        }
      } else {
        const uint32_t b = tree.child_begin(entry.node);
        const uint32_t e = tree.child_end(entry.node);
        lane_masks.resize(e - b);
        ++st->block_kernel_calls;
        // Non-strict: min corner == t still overlaps the closed ADR.
        TileDominanceMasks(tree.min_corner_block(b, e), tile, tile_count,
                           /*strict=*/false, lane_masks.data());
        for (uint32_t lane = 0; lane < e - b; ++lane) {
          uint64_t lm = lane_masks[lane] & mask;
          if (lm == 0) continue;
          const uint32_t child = b + lane;
          if (masked && tree.node_live_count(child) == 0) continue;
          lm = window_prune(lm, tree.min_corner(child));
          if (lm == 0) continue;
          heap.push({tree.min_corner_sum(child), seq++, child,
                     kInvalidPointId, lm});
        }
      }
    } else {
      const double* p = tree.dataset().data(entry.point);
      for (uint64_t m = entry.mask; m != 0; m &= m - 1) {
        const size_t j = static_cast<size_t>(__builtin_ctzll(m));
        if (PrunedBySkyline(windows[j], p, st)) continue;
        windows[j].Append(p);
        results[j].push_back(entry.point);
      }
    }
  }
  for (size_t j = 0; j < tile_count; ++j) {
    SKYUP_PARANOID_OK(CheckProbeResult(tree.dataset(), tile[j], results[j]));
  }
}

std::vector<PointId> DominatingSkylineFrom(
    const Dataset& data, const std::vector<const RTreeNode*>& roots,
    const std::vector<PointId>& points, const double* t, ProbeStats* stats) {
  SKYUP_TRACE_SPAN_VERBOSE("probe/dominating-skyline-from");
  std::vector<PointId> result;
  const size_t dims = data.dims();
  ProbeStats local;
  ProbeStats* st = stats != nullptr ? stats : &local;

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  uint64_t seq = 0;
  for (const RTreeNode* root : roots) {
    if (root == nullptr || root->entry_count() == 0) continue;
    if (!OverlapsAdr(root->mbr.min_data(), t, dims)) continue;
    heap.push({root->mbr.MinCornerSum(), seq++, root, kInvalidPointId});
  }
  for (PointId id : points) {
    const double* p = data.data(id);
    ++st->points_scanned;
    if (!Dominates(p, t, dims)) continue;
    double key = 0.0;
    for (size_t i = 0; i < dims; ++i) key += p[i];
    heap.push({key, seq++, nullptr, id});
  }

  // The join's candidate filter: same traversal as above, pointer nodes,
  // but the dominance window runs on the batched SoA kernels.
  SoaBlock window(dims);
  while (!heap.empty()) {
    const Entry entry = heap.top();
    heap.pop();
    ++st->heap_pops;

    if (entry.node != nullptr) {
      ++st->nodes_visited;
      if (PrunedBySkyline(window, entry.node->mbr.min_data(), st)) continue;
      if (entry.node->is_leaf()) {
        for (PointId id : entry.node->points) {
          const double* p = data.data(id);
          ++st->points_scanned;
          // Only strict dominators of t are candidates; a point equal to t
          // does not dominate it.
          if (!Dominates(p, t, dims)) continue;
          if (PrunedBySkyline(window, p, st)) continue;
          double key = 0.0;
          for (size_t i = 0; i < dims; ++i) key += p[i];
          heap.push({key, seq++, nullptr, id});
        }
      } else {
        for (const auto& child : entry.node->children) {
          if (!OverlapsAdr(child->mbr.min_data(), t, dims)) continue;
          if (PrunedBySkyline(window, child->mbr.min_data(), st)) continue;
          heap.push(
              {child->mbr.MinCornerSum(), seq++, child.get(), kInvalidPointId});
        }
      }
    } else {
      const double* p = data.data(entry.point);
      if (PrunedBySkyline(window, p, st)) continue;
      window.Append(p);
      result.push_back(entry.point);
    }
  }
  SKYUP_PARANOID_OK(CheckProbeResult(data, t, result));
  return result;
}

}  // namespace skyup
