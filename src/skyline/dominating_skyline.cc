#include "skyline/dominating_skyline.h"

#include <queue>
#include <vector>

#include "core/dominance.h"
#include "util/logging.h"

namespace skyup {

namespace {

struct Entry {
  double key;
  uint64_t seq;
  const RTreeNode* node;
  PointId point;

  bool operator>(const Entry& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

// An R-tree entry can intersect ADR(t) = (-inf, t] iff its min corner is
// coordinatewise <= t.
bool OverlapsAdr(const double* min_corner, const double* t, size_t dims) {
  return DominatesOrEqual(min_corner, t, dims);
}

bool PrunedBySkyline(const std::vector<const double*>& window,
                     const double* min_corner, size_t dims) {
  for (const double* s : window) {
    if (DominatesOrEqual(s, min_corner, dims)) return true;
  }
  return false;
}

}  // namespace

std::vector<PointId> DominatingSkyline(const RTree& tree, const double* t,
                                       ProbeStats* stats) {
  if (tree.empty()) return {};
  return DominatingSkylineFrom(tree.dataset(), {tree.root()}, {}, t, stats);
}

std::vector<PointId> DominatingSkylineFrom(
    const Dataset& data, const std::vector<const RTreeNode*>& roots,
    const std::vector<PointId>& points, const double* t, ProbeStats* stats) {
  std::vector<PointId> result;
  const size_t dims = data.dims();
  ProbeStats local;
  ProbeStats* st = stats != nullptr ? stats : &local;

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  uint64_t seq = 0;
  for (const RTreeNode* root : roots) {
    if (root == nullptr || root->entry_count() == 0) continue;
    if (!OverlapsAdr(root->mbr.min_data(), t, dims)) continue;
    heap.push({root->mbr.MinCornerSum(), seq++, root, kInvalidPointId});
  }
  for (PointId id : points) {
    const double* p = data.data(id);
    ++st->points_scanned;
    if (!Dominates(p, t, dims)) continue;
    double key = 0.0;
    for (size_t i = 0; i < dims; ++i) key += p[i];
    heap.push({key, seq++, nullptr, id});
  }

  std::vector<const double*> window;
  while (!heap.empty()) {
    const Entry entry = heap.top();
    heap.pop();
    ++st->heap_pops;

    if (entry.node != nullptr) {
      ++st->nodes_visited;
      if (PrunedBySkyline(window, entry.node->mbr.min_data(), dims)) continue;
      if (entry.node->is_leaf()) {
        for (PointId id : entry.node->points) {
          const double* p = data.data(id);
          ++st->points_scanned;
          // Only strict dominators of t are candidates; a point equal to t
          // does not dominate it.
          if (!Dominates(p, t, dims)) continue;
          if (PrunedBySkyline(window, p, dims)) continue;
          double key = 0.0;
          for (size_t i = 0; i < dims; ++i) key += p[i];
          heap.push({key, seq++, nullptr, id});
        }
      } else {
        for (const auto& child : entry.node->children) {
          if (!OverlapsAdr(child->mbr.min_data(), t, dims)) continue;
          if (PrunedBySkyline(window, child->mbr.min_data(), dims)) continue;
          heap.push(
              {child->mbr.MinCornerSum(), seq++, child.get(), kInvalidPointId});
        }
      }
    } else {
      const double* p = data.data(entry.point);
      if (PrunedBySkyline(window, p, dims)) continue;
      window.push_back(p);
      result.push_back(entry.point);
    }
  }
  return result;
}

}  // namespace skyup
