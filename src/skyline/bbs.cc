#include <queue>
#include <vector>

#include "core/dominance.h"
#include "skyline/skyline.h"
#include "util/logging.h"

namespace skyup {

namespace {

// Best-first queue entry: either an R-tree node or a concrete point,
// prioritized by the L1 "mindist" (sum of min-corner coordinates), which is
// a monotone scoring function — guaranteeing that a deheaped, undominated
// point is a final skyline member (Papadias et al., BBS).
struct BbsEntry {
  double key;
  uint64_t seq;  // deterministic FIFO tie-break
  const RTreeNode* node;
  PointId point;

  bool operator>(const BbsEntry& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

bool EntryDominated(const std::vector<const double*>& skyline,
                    const double* min_corner, size_t dims) {
  for (const double* s : skyline) {
    if (DominatesOrEqual(s, min_corner, dims)) return true;
  }
  return false;
}

}  // namespace

std::vector<PointId> SkylineBbs(const RTree& tree) {
  std::vector<PointId> result;
  if (tree.empty()) return result;

  const Dataset& data = tree.dataset();
  const size_t dims = data.dims();
  std::priority_queue<BbsEntry, std::vector<BbsEntry>, std::greater<BbsEntry>>
      heap;
  uint64_t seq = 0;
  heap.push({tree.root()->mbr.MinCornerSum(), seq++, tree.root(),
             kInvalidPointId});

  std::vector<const double*> window;
  while (!heap.empty()) {
    const BbsEntry entry = heap.top();
    heap.pop();
    if (entry.node != nullptr) {
      if (EntryDominated(window, entry.node->mbr.min_data(), dims)) continue;
      if (entry.node->is_leaf()) {
        for (PointId id : entry.node->points) {
          const double* p = data.data(id);
          if (!EntryDominated(window, p, dims)) {
            double key = 0.0;
            for (size_t i = 0; i < dims; ++i) key += p[i];
            heap.push({key, seq++, nullptr, id});
          }
        }
      } else {
        for (const auto& child : entry.node->children) {
          if (!EntryDominated(window, child->mbr.min_data(), dims)) {
            heap.push({child->mbr.MinCornerSum(), seq++, child.get(),
                       kInvalidPointId});
          }
        }
      }
    } else {
      const double* p = data.data(entry.point);
      if (!EntryDominated(window, p, dims)) {
        window.push_back(p);
        result.push_back(entry.point);
      }
    }
  }
  return result;
}

std::vector<PointId> Skyline(const Dataset& data, SkylineAlgorithm algo) {
  if (data.empty()) return {};
  switch (algo) {
    case SkylineAlgorithm::kBnl:
      return SkylineBnl(data);
    case SkylineAlgorithm::kSfs:
      return SkylineSfs(data);
    case SkylineAlgorithm::kBbs: {
      Result<RTree> tree = RTree::BulkLoad(data);
      SKYUP_CHECK(tree.ok()) << tree.status().ToString();
      return SkylineBbs(tree.value());
    }
    case SkylineAlgorithm::kDnc:
      return SkylineDnc(data);
  }
  SKYUP_CHECK(false) << "unreachable";
  return {};
}

}  // namespace skyup
