#include <queue>
#include <vector>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "rtree/flat_rtree.h"
#include "skyline/skyline.h"
#include "util/logging.h"

namespace skyup {

namespace {

// Best-first queue entry: either an R-tree node or a concrete point,
// prioritized by the L1 "mindist" (sum of min-corner coordinates), which is
// a monotone scoring function — guaranteeing that a deheaped, undominated
// point is a final skyline member (Papadias et al., BBS).
struct BbsEntry {
  double key;
  uint64_t seq;  // deterministic FIFO tie-break
  const RTreeNode* node;
  PointId point;

  bool operator>(const BbsEntry& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

bool EntryDominated(const std::vector<const double*>& skyline,
                    const double* min_corner, size_t dims) {
  for (const double* s : skyline) {
    if (DominatesOrEqual(s, min_corner, dims)) return true;
  }
  return false;
}

}  // namespace

std::vector<PointId> SkylineBbs(const RTree& tree) {
  std::vector<PointId> result;
  if (tree.empty()) return result;

  const Dataset& data = tree.dataset();
  const size_t dims = data.dims();
  std::priority_queue<BbsEntry, std::vector<BbsEntry>, std::greater<BbsEntry>>
      heap;
  uint64_t seq = 0;
  heap.push({tree.root()->mbr.MinCornerSum(), seq++, tree.root(),
             kInvalidPointId});

  std::vector<const double*> window;
  while (!heap.empty()) {
    const BbsEntry entry = heap.top();
    heap.pop();
    if (entry.node != nullptr) {
      if (EntryDominated(window, entry.node->mbr.min_data(), dims)) continue;
      if (entry.node->is_leaf()) {
        for (PointId id : entry.node->points) {
          const double* p = data.data(id);
          if (!EntryDominated(window, p, dims)) {
            double key = 0.0;
            for (size_t i = 0; i < dims; ++i) key += p[i];
            heap.push({key, seq++, nullptr, id});
          }
        }
      } else {
        for (const auto& child : entry.node->children) {
          if (!EntryDominated(window, child->mbr.min_data(), dims)) {
            heap.push({child->mbr.MinCornerSum(), seq++, child.get(),
                       kInvalidPointId});
          }
        }
      }
    } else {
      const double* p = data.data(entry.point);
      if (!EntryDominated(window, p, dims)) {
        window.push_back(p);
        result.push_back(entry.point);
      }
    }
  }
  // The tree may index a subset of the dataset (incremental builds), so the
  // paranoid re-proof enumerates the tree's own points as the input set.
  SKYUP_PARANOID_OK([&]() -> Status {
    std::vector<PointId> all;
    tree.RangeQuery(tree.root()->mbr, &all);
    return CheckSkylineInvariants(data, &all, result);
  }());
  return result;
}

std::vector<PointId> SkylineBbs(const FlatRTree& tree) {
  std::vector<PointId> result;
  if (tree.empty() || tree.live_size() == 0) return result;
  // The traversal trusts the arena's structural invariants (slot ranges,
  // containment, SoA/AoS mirror agreement); re-prove them under paranoid.
  SKYUP_PARANOID_OK(tree.Validate());

  const size_t dims = tree.dims();
  constexpr uint32_t kNoNode = UINT32_MAX;
  struct FlatBbsEntry {
    double key;
    uint64_t seq;
    uint32_t node;
    PointId point;
    bool operator>(const FlatBbsEntry& other) const {
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };
  std::priority_queue<FlatBbsEntry, std::vector<FlatBbsEntry>,
                      std::greater<FlatBbsEntry>>
      heap;
  uint64_t seq = 0;
  heap.push({tree.min_corner_sum(FlatRTree::kRoot), seq++, FlatRTree::kRoot,
             kInvalidPointId});

  // Same traversal as the pointer form; the window is one SoA block and the
  // per-entry dominance tests are batched kernel sweeps.
  SoaBlock window(dims);
  auto dominated = [&window](const double* p) {
    return !window.empty() && DominatesAny(window.view(), p);
  };
  while (!heap.empty()) {
    const FlatBbsEntry entry = heap.top();
    heap.pop();
    if (entry.node != kNoNode) {
      if (dominated(tree.min_corner(entry.node))) continue;
      if (tree.is_leaf(entry.node)) {
        const uint32_t b = tree.point_begin(entry.node);
        const uint32_t e = tree.point_end(entry.node);
        for (uint32_t slot = b; slot < e; ++slot) {
          if (!tree.slot_alive(slot)) continue;
          const double* p = tree.slot_coords(slot);
          if (dominated(p)) continue;
          double key = 0.0;
          for (size_t i = 0; i < dims; ++i) key += p[i];
          heap.push({key, seq++, kNoNode, tree.point_ids()[slot]});
        }
      } else {
        for (uint32_t child = tree.child_begin(entry.node);
             child < tree.child_end(entry.node); ++child) {
          if (tree.node_live_count(child) == 0) continue;
          if (dominated(tree.min_corner(child))) continue;
          heap.push({tree.min_corner_sum(child), seq++, child,
                     kInvalidPointId});
        }
      }
    } else {
      const double* p = tree.dataset().data(entry.point);
      if (dominated(p)) continue;
      window.Append(p);
      result.push_back(entry.point);
    }
  }
  SKYUP_PARANOID_OK([&]() -> Status {
    // Re-proof input: the *live* slots only — tombstoned points are not
    // part of the set whose skyline this computes.
    std::vector<PointId> all;
    all.reserve(tree.live_size());
    for (uint32_t j = 0; j < tree.size(); ++j) {
      if (tree.slot_alive(j)) all.push_back(tree.point_ids()[j]);
    }
    return CheckSkylineInvariants(tree.dataset(), &all, result);
  }());
  return result;
}

std::vector<PointId> Skyline(const Dataset& data, SkylineAlgorithm algo) {
  if (data.empty()) return {};
  switch (algo) {
    case SkylineAlgorithm::kBnl:
      return SkylineBnl(data);
    case SkylineAlgorithm::kSfs:
      return SkylineSfs(data);
    case SkylineAlgorithm::kBbs: {
      // The dispatcher builds a throwaway index anyway, so it builds the
      // cache-friendly flat snapshot and runs the batched traversal.
      Result<FlatRTree> tree = FlatRTree::BulkLoad(data);
      SKYUP_CHECK(tree.ok()) << tree.status().ToString();
      return SkylineBbs(tree.value());
    }
    case SkylineAlgorithm::kDnc:
      return SkylineDnc(data);
  }
  SKYUP_CHECK(false) << "unreachable";
  return {};
}

}  // namespace skyup
