#include <string>
#include <vector>

#include "core/dominance.h"
#include "skyline/skyline.h"

namespace skyup {

// Re-proves the skyline definition from scratch; the SKYUP_PARANOID_OK
// postcondition hook of every skyline algorithm. Two checked properties
// imply the full contract:
//
//   1. mutual incomparability — no two members compare as anything but
//      kIncomparable (this also forbids duplicate coordinate vectors,
//      honoring "one representative per distinct vector");
//   2. coverage — every input point is dominated-or-equalled by a member.
//
// "No survivor is dominated by an input point" follows: if input p
// strictly dominated member s, p's own cover s2 (s2 <= p componentwise)
// would strictly dominate s too, contradicting (1).
Status CheckSkylineInvariants(const Dataset& data,
                              const std::vector<PointId>* subset,
                              const std::vector<PointId>& skyline) {
  const size_t dims = data.dims();
  const auto n = static_cast<PointId>(data.size());
  for (PointId id : skyline) {
    if (id < 0 || id >= n) {
      return Status::Internal("skyline id " + std::to_string(id) +
                              " outside dataset of " + std::to_string(n) +
                              " points");
    }
  }
  for (size_t i = 0; i < skyline.size(); ++i) {
    for (size_t j = i + 1; j < skyline.size(); ++j) {
      const DomRelation rel =
          Compare(data.data(skyline[i]), data.data(skyline[j]), dims);
      if (rel != DomRelation::kIncomparable) {
        return Status::Internal(
            "skyline members " + std::to_string(skyline[i]) + " and " +
            std::to_string(skyline[j]) +
            (rel == DomRelation::kEqual ? " are duplicates"
                                        : " are comparable"));
      }
    }
  }
  auto covered = [&](PointId id) {
    const double* p = data.data(id);
    for (PointId s : skyline) {
      if (DominatesOrEqual(data.data(s), p, dims)) return true;
    }
    return false;
  };
  if (subset != nullptr) {
    for (PointId id : *subset) {
      if (!covered(id)) {
        return Status::Internal("input point " + std::to_string(id) +
                                " is not covered by the skyline");
      }
    }
  } else {
    for (PointId id = 0; id < n; ++id) {
      if (!covered(id)) {
        return Status::Internal("input point " + std::to_string(id) +
                                " is not covered by the skyline");
      }
    }
  }
  return Status::OK();
}

}  // namespace skyup
