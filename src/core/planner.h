#ifndef SKYUP_CORE_PLANNER_H_
#define SKYUP_CORE_PLANNER_H_

#include <memory>
#include <vector>

#include "core/cost_function.h"
#include "core/dataset.h"
#include "core/join.h"
#include "core/lower_bounds.h"
#include "core/probing.h"
#include "core/query_control.h"
#include "core/upgrade_result.h"
#include "obs/phase_timings.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

/// Algorithm selector for `UpgradePlanner::TopK`.
enum class Algorithm {
  kBruteForce,       ///< index-free oracle (linear scans)
  kBasicProbing,     ///< Algorithm 2
  kImprovedProbing,  ///< Algorithm 2 with getDominatingSky (Algorithm 3)
  kJoin,             ///< Algorithm 4
};

const char* AlgorithmName(Algorithm algorithm);

/// One query's full observability payload: the ranked answers plus the
/// work counters, phase breakdown, latency histograms, and wall time that
/// explain them. Returned by `UpgradePlanner::TopKWithReport`; the CLI's
/// `--profile` / `--metrics-out` and bench phase attribution feed on it.
struct TopKReport {
  std::vector<UpgradeResult> results;
  ExecStats stats;
  QueryTelemetry telemetry;
  /// End-to-end wall seconds of the query (`util/timer.h` steady clock),
  /// including engine overhead the phase laps do not attribute.
  double wall_seconds = 0.0;
  Algorithm algorithm = Algorithm::kImprovedProbing;
  size_t k = 0;
};

/// Facade configuration.
struct PlannerOptions {
  /// Upgrade step ε of Algorithm 1.
  double epsilon = 1e-6;
  /// Join-list lower bound used by the join algorithm.
  LowerBoundKind lower_bound = LowerBoundKind::kConservative;
  /// Pairwise bound formula for the join; see `BoundMode`. The sound
  /// default keeps the join exact.
  BoundMode bound_mode = BoundMode::kSound;
  /// R-tree fanout used when indexing P and T.
  size_t rtree_fanout = 64;
  /// Worker threads for the probing and brute-force algorithms: 1 (the
  /// default) runs the sequential implementations, 0 uses one worker per
  /// hardware thread, any other value exactly that many workers. Results
  /// are identical across all settings (core/parallel_probing.h); the
  /// join algorithm is inherently sequential and ignores this.
  size_t threads = 1;
  /// If true (the default), the planner also builds an immutable flat
  /// arena snapshot of the competitor R-tree (rtree/flat_rtree.h) and
  /// routes improved probing — sequential and parallel — through the
  /// batched SoA traversal. Results are bit-identical either way; turn it
  /// off to force the pointer-tree scalar baseline (ablation, or when the
  /// snapshot's extra memory matters).
  bool use_flat_index = true;
  /// If true, sequential improved probing over the flat snapshot groups
  /// candidates into tiles of `kMaxDominanceTile` and computes each tile's
  /// dominator skylines with one shared traversal
  /// (`TopKImprovedProbingTiled`) — the offline counterpart of the serving
  /// layer's grouped execution. Same results; requires `use_flat_index`
  /// and `threads == 1` (the parallel engine shards candidates itself).
  bool probe_tile = false;
  /// If true, `Create` rejects cost functions that fail a randomized
  /// monotonicity check over the data's bounding box.
  bool validate_monotonicity = false;
  /// Join ablation switches; see `JoinOptions`.
  bool mutual_dominance_pruning = true;
  bool refine_zero_bound_leaves = true;
};

/// The library's front door: owns copies of the competitor set `P` and the
/// candidate set `T`, indexes both with R-trees, and answers top-k product
/// upgrading queries with any of the paper's algorithms.
///
/// Typical use:
///
///   auto planner = UpgradePlanner::Create(P, T, cost_fn);
///   auto top3 = planner->TopK(3, Algorithm::kJoin);
///
/// For streaming consumption, `OpenJoinCursor()` yields results one at a
/// time in nondecreasing cost order (the paper's progressiveness).
class UpgradePlanner {
 public:
  /// Validates inputs, copies the datasets, and bulk-loads both R-trees.
  static Result<UpgradePlanner> Create(Dataset competitors, Dataset products,
                                       ProductCostFunction cost_fn,
                                       PlannerOptions options = {});

  UpgradePlanner(UpgradePlanner&&) = default;
  UpgradePlanner& operator=(UpgradePlanner&&) = default;
  UpgradePlanner(const UpgradePlanner&) = delete;
  UpgradePlanner& operator=(const UpgradePlanner&) = delete;

  /// The k cheapest upgrades, ascending by (cost, product id). With
  /// `telemetry` non-null the engines additionally collect per-phase wall
  /// times and latency histograms (obs/phase_timings.h) — leave it null on
  /// hot paths that do not need them. With `control` non-null the query is
  /// cancellable: the parallel engines poll it at shard boundaries; the
  /// sequential/join paths check it once up front (their per-query latency
  /// is bounded by construction, so mid-flight polling buys nothing).
  Result<std::vector<UpgradeResult>> TopK(
      size_t k, Algorithm algorithm, ExecStats* stats = nullptr,
      QueryTelemetry* telemetry = nullptr,
      const QueryControl* control = nullptr) const;

  /// `TopK` plus the full observability payload (stats, phase breakdown,
  /// histograms, wall time) in one call.
  Result<TopKReport> TopKWithReport(size_t k, Algorithm algorithm) const;

  /// Progressive join execution; the planner must outlive the cursor.
  Result<JoinCursor> OpenJoinCursor() const;

  /// The single-set variant (a "research direction" in the paper): ranks
  /// the products of `catalog` by the cost of upgrading each against all
  /// *other* catalog members. Already-undominated members come first at
  /// cost 0.
  static Result<std::vector<UpgradeResult>> TopKWithinSet(
      const Dataset& catalog, const ProductCostFunction& cost_fn, size_t k,
      PlannerOptions options = {});

  const Dataset& competitors() const { return *competitors_; }
  const Dataset& products() const { return *products_; }
  const RTree& competitors_tree() const { return *rp_; }
  const RTree& products_tree() const { return *rt_; }
  /// Flat snapshot of the competitor tree; null when
  /// `PlannerOptions::use_flat_index` is false.
  const FlatRTree* competitors_flat() const { return fp_.get(); }
  const ProductCostFunction& cost_function() const { return *cost_fn_; }
  const PlannerOptions& options() const { return options_; }

 private:
  UpgradePlanner(std::unique_ptr<Dataset> competitors,
                 std::unique_ptr<Dataset> products,
                 std::unique_ptr<ProductCostFunction> cost_fn,
                 PlannerOptions options);

  // unique_ptr members keep dataset addresses stable across planner moves
  // (the R-trees hold raw pointers into them).
  std::unique_ptr<Dataset> competitors_;
  std::unique_ptr<Dataset> products_;
  std::unique_ptr<ProductCostFunction> cost_fn_;
  PlannerOptions options_;
  std::unique_ptr<RTree> rp_;
  std::unique_ptr<RTree> rt_;
  std::unique_ptr<FlatRTree> fp_;
};

}  // namespace skyup

#endif  // SKYUP_CORE_PLANNER_H_
