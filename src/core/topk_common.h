#ifndef SKYUP_CORE_TOPK_COMMON_H_
#define SKYUP_CORE_TOPK_COMMON_H_

// Internal building blocks shared by the sequential (core/probing.cc) and
// parallel (core/parallel_probing.cc) top-k entry points: the canonical
// (cost, product id) result order, the bounded top-k collector, and the
// common argument validation. One definition of each, so result ordering
// and error diagnostics can never drift between the code paths.

#include <algorithm>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "core/cost_function.h"
#include "core/dataset.h"
#include "core/upgrade_result.h"
#include "util/check.h"
#include "util/status.h"

namespace skyup {

/// The canonical result order of every top-k API: ascending cost, ties
/// broken by ascending product id.
inline bool UpgradeResultBefore(const UpgradeResult& a,
                                const UpgradeResult& b) {
  // lint: float-eq-ok (deterministic tie-break; any inexactness only
  // routes to the id comparison, never misorders)
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.product_id < b.product_id;
}

/// Keeps the k cheapest (cost, id, outcome) candidates seen so far.
class TopKCollector {
 public:
  explicit TopKCollector(size_t k) : k_(k) {}

  /// True if a candidate with this cost could still enter the top-k; lets
  /// callers skip building result payloads for hopeless candidates.
  bool Admits(double cost) const {
    if (heap_.size() < k_) return true;
    // <= so that equal-cost candidates reach Add, where the id tie-break
    // decides.
    return cost <= heap_.top().result.cost;
  }

  /// Cost of the current k-th best, or +infinity while fewer than k
  /// candidates are held. No candidate costing strictly more can ever be
  /// admitted here (nor, a fortiori, into the global top-k).
  double KthCost() const {
    if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
    return heap_.top().result.cost;
  }

  void Add(UpgradeResult result) {
    // Upgrade costs are non-negative by the monotonicity contract; allow
    // the same rounding slack CheckMonotonicity tolerates.
    SKYUP_DCHECK(result.cost >= -1e-9)
        << "negative upgrade cost " << result.cost << " for product "
        << result.product_id;
    if (heap_.size() < k_) {
      heap_.push({std::move(result)});
      return;
    }
    if (UpgradeResultBefore(result, heap_.top().result)) {
      heap_.pop();
      heap_.push({std::move(result)});
    }
  }

  std::vector<UpgradeResult> Finish() {
    std::vector<UpgradeResult> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(std::move(const_cast<Item&>(heap_.top()).result));
      heap_.pop();
    }
    std::sort(out.begin(), out.end(), UpgradeResultBefore);
    SKYUP_DCHECK(out.size() <= k_);
    return out;
  }

 private:
  struct Item {
    UpgradeResult result;
    // Max-heap on (cost, id): the heap top is the current worst member.
    bool operator<(const Item& other) const {
      return UpgradeResultBefore(result, other.result);
    }
  };

  size_t k_;
  std::priority_queue<Item> heap_;
};

/// Query-shape validation shared by every top-k entry point — batch,
/// parallel, and the serving overlay (serve/query.cc) — so all of them
/// reject bad k/epsilon/cost-function input with identical diagnostics.
/// `dims` is the dimensionality of the data the query runs against.
inline Status ValidateTopKQueryShape(size_t dims,
                                     const ProductCostFunction& cost_fn,
                                     size_t k, double epsilon) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (cost_fn.dims() != dims) {
    return Status::InvalidArgument(
        "cost function dimensionality " + std::to_string(cost_fn.dims()) +
        " does not match data dimensionality " + std::to_string(dims));
  }
  return Status::OK();
}

/// Batch-path validation: the query shape plus the static-input contracts
/// (matching competitor/product dimensionality, non-empty T). The serving
/// path checks only the shape — an empty live product set is a legal
/// serving state that simply yields an empty result.
inline Status ValidateTopKArgs(size_t competitor_dims, const Dataset& products,
                               const ProductCostFunction& cost_fn, size_t k,
                               double epsilon) {
  SKYUP_RETURN_IF_ERROR(
      ValidateTopKQueryShape(products.dims(), cost_fn, k, epsilon));
  if (products.dims() != competitor_dims) {
    return Status::InvalidArgument(
        "competitor and product dimensionality differ: " +
        std::to_string(competitor_dims) + " vs " +
        std::to_string(products.dims()));
  }
  if (products.empty()) {
    return Status::InvalidArgument("product set T is empty");
  }
  return Status::OK();
}

/// Paranoid spot check shared by the top-k entry points: the cost function
/// must be product-level monotone over the products' own coordinate span
/// (the contract every pruning bound in this library leans on). A
/// degenerate span — every coordinate identical — offers no comparable
/// pairs to sample, so it passes vacuously.
inline Status SpotCheckCostMonotonicity(const ProductCostFunction& cost_fn,
                                        const Dataset& products) {
  if (products.empty()) return Status::OK();
  const std::vector<double> lo = products.MinCorner();
  const std::vector<double> hi = products.MaxCorner();
  double span_lo = lo[0];
  double span_hi = hi[0];
  for (size_t i = 1; i < lo.size(); ++i) {
    span_lo = std::min(span_lo, lo[i]);
    span_hi = std::max(span_hi, hi[i]);
  }
  if (!(span_lo < span_hi)) return Status::OK();
  return cost_fn.CheckMonotonicity(span_lo, span_hi);
}

}  // namespace skyup

#endif  // SKYUP_CORE_TOPK_COMMON_H_
