#include "core/single_upgrade.h"

#include <algorithm>
#include <limits>

#include "core/dominance.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace skyup {

UpgradeOutcome UpgradeProduct(std::vector<const double*> skyline,
                              const double* p, size_t dims,
                              const ProductCostFunction& cost_fn,
                              double epsilon) {
  SKYUP_CHECK(epsilon > 0.0) << "upgrade epsilon must be positive";
  SKYUP_CHECK(cost_fn.dims() == dims);
  SKYUP_TRACE_SPAN_VERBOSE("upgrade/product");

  UpgradeOutcome outcome;
  outcome.upgraded.assign(p, p + dims);
  if (skyline.empty()) {
    outcome.already_competitive = true;
    return outcome;
  }

#ifndef NDEBUG
  for (const double* s : skyline) {
    SKYUP_DCHECK(Dominates(s, p, dims))
        << "skyline member does not dominate the product";
  }
#endif

  const double base_cost = cost_fn.Cost(p);
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<double> best(p, p + dims);
  std::vector<double> candidate(dims);

  auto consider = [&](const std::vector<double>& cand) {
    const double cost = cost_fn.Cost(cand.data()) - base_cost;
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  };

  for (size_t k = 0; k < dims; ++k) {
    // Sort the skyline ascending on dimension k (Algorithm 1 line 3).
    // Ties on dimension k break lexicographically on the full coordinate
    // vector, never on pointer identity: the outcome must be a pure
    // function of the dominator *value set* so that memoized and batched
    // executions (which materialize the same skyline at different
    // addresses and in different arrival orders) reproduce it bit for
    // bit. Points with fully equal coordinates are interchangeable in
    // both Option 1 and Option 2, so their relative order is irrelevant.
    std::sort(skyline.begin(), skyline.end(),
              [k, dims](const double* a, const double* b) {
                if (a[k] != b[k]) return a[k] < b[k];
                for (size_t x = 0; x < dims; ++x) {
                  if (a[x] != b[x]) return a[x] < b[x];
                }
                return false;
              });

    // Option 1 (lines 4-7): beat every skyline point on dimension k alone.
    candidate.assign(p, p + dims);
    candidate[k] = skyline.front()[k] - epsilon;
    consider(candidate);

    // Option 2 (lines 8-16): for consecutive s_i, s_j on dimension k, beat
    // s_j on k and s_i on every other dimension.
    for (size_t i = 0; i + 1 < skyline.size(); ++i) {
      const double* si = skyline[i];
      const double* sj = skyline[i + 1];
      for (size_t x = 0; x < dims; ++x) {
        candidate[x] = (x == k ? sj[x] : si[x]) - epsilon;
      }
      consider(candidate);
    }
  }

  outcome.cost = best_cost;
  outcome.upgraded = std::move(best);

#ifndef NDEBUG
  for (const double* s : skyline) {
    SKYUP_DCHECK(!Dominates(s, outcome.upgraded.data(), dims))
        << "Lemma 1 violated: upgraded product still dominated";
  }
#endif
  return outcome;
}

}  // namespace skyup
