#include "core/dominance.h"

namespace skyup {

bool Dominates(const double* a, const double* b, size_t dims) {
  bool strict = false;
  for (size_t i = 0; i < dims; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool DominatesOrEqual(const double* a, const double* b, size_t dims) {
  for (size_t i = 0; i < dims; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

DomRelation Compare(const double* a, const double* b, size_t dims) {
  bool a_better = false;
  bool b_better = false;
  for (size_t i = 0; i < dims; ++i) {
    if (a[i] < b[i]) {
      a_better = true;
    } else if (b[i] < a[i]) {
      b_better = true;
    }
    if (a_better && b_better) return DomRelation::kIncomparable;
  }
  if (a_better) return DomRelation::kDominates;
  if (b_better) return DomRelation::kDominatedBy;
  return DomRelation::kEqual;
}

}  // namespace skyup
