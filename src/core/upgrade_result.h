#ifndef SKYUP_CORE_UPGRADE_RESULT_H_
#define SKYUP_CORE_UPGRADE_RESULT_H_

#include <cstddef>
#include <vector>

#include "core/point.h"
#include "util/check.h"

namespace skyup {

/// One ranked answer of the top-k product upgrading problem.
struct UpgradeResult {
  /// Row of the candidate product in the `T` dataset.
  PointId product_id = kInvalidPointId;
  /// Minimal upgrading cost found by Algorithm 1 for this product.
  double cost = 0.0;
  /// The upgraded attribute vector `t'` realizing that cost.
  std::vector<double> upgraded;
  /// True iff no competitor dominates the product (cost 0, unchanged).
  bool already_competitive = false;
};

/// Work counters shared by all top-k algorithms; used by tests, the
/// ablation benches, and for explaining performance differences.
struct ExecStats {
  size_t products_processed = 0;   ///< candidates examined (incl. pruned)
  size_t dominators_fetched = 0;   ///< points retrieved as dominators
  size_t skyline_points_total = 0; ///< sum of dominator-skyline sizes
  size_t upgrade_calls = 0;        ///< invocations of Algorithm 1
  size_t heap_pops = 0;            ///< join/BBS priority-queue pops
  size_t t_expansions = 0;         ///< join: T-side node expansions
  size_t p_refinements = 0;        ///< join: P-side join-list refinements
  size_t lbc_evaluations = 0;      ///< pairwise LBC computations
  size_t jl_entries_pruned = 0;    ///< join-list entries dropped by mutual
                                   ///< dominance (Alg. 4 lines 25-30)
  size_t candidates_pruned = 0;    ///< candidates skipped because a sound
                                   ///< lower bound exceeded the top-k
                                   ///< threshold (no skyline/upgrade work)
  size_t threshold_updates = 0;    ///< successful lowerings of the shared
                                   ///< parallel cost threshold (CAS wins)
  size_t nodes_visited = 0;        ///< index nodes expanded by probe
                                   ///< traversals (ProbeStats roll-up)
  size_t points_scanned = 0;       ///< leaf points examined by probe
                                   ///< traversals (ProbeStats roll-up)
  size_t block_kernel_calls = 0;   ///< batched SIMD/SoA dominance-kernel
                                   ///< invocations (core/dominance_batch.h)

  /// Field-wise sum, used wherever per-shard or per-phase counters are
  /// aggregated into one view. Every field participates.
  ExecStats& MergeFrom(const ExecStats& other) {
    // Tripwire: adding a field to ExecStats changes its size, which trips
    // this assert until the new field is summed below (and the merge test
    // in tests/parallel_engine_test.cc is taught about it).
    static_assert(sizeof(ExecStats) == 14 * sizeof(size_t),
                  "ExecStats gained/lost a field: update MergeFrom");
    // Counters only ever grow; a merged value below its old one means the
    // unsigned add wrapped (billions of billions of operations — in
    // practice a corrupted shard).
    auto add = [](size_t* into, size_t delta) {
      const size_t before = *into;
      *into += delta;
      SKYUP_DCHECK(*into >= before) << "ExecStats counter overflow";
    };
    add(&products_processed, other.products_processed);
    add(&dominators_fetched, other.dominators_fetched);
    add(&skyline_points_total, other.skyline_points_total);
    add(&upgrade_calls, other.upgrade_calls);
    add(&heap_pops, other.heap_pops);
    add(&t_expansions, other.t_expansions);
    add(&p_refinements, other.p_refinements);
    add(&lbc_evaluations, other.lbc_evaluations);
    add(&jl_entries_pruned, other.jl_entries_pruned);
    add(&candidates_pruned, other.candidates_pruned);
    add(&threshold_updates, other.threshold_updates);
    add(&nodes_visited, other.nodes_visited);
    add(&points_scanned, other.points_scanned);
    add(&block_kernel_calls, other.block_kernel_calls);
    return *this;
  }

  ExecStats& operator+=(const ExecStats& other) { return MergeFrom(other); }
};

}  // namespace skyup

#endif  // SKYUP_CORE_UPGRADE_RESULT_H_
