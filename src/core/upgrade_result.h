#ifndef SKYUP_CORE_UPGRADE_RESULT_H_
#define SKYUP_CORE_UPGRADE_RESULT_H_

#include <cstddef>
#include <vector>

#include "core/point.h"

namespace skyup {

/// One ranked answer of the top-k product upgrading problem.
struct UpgradeResult {
  /// Row of the candidate product in the `T` dataset.
  PointId product_id = kInvalidPointId;
  /// Minimal upgrading cost found by Algorithm 1 for this product.
  double cost = 0.0;
  /// The upgraded attribute vector `t'` realizing that cost.
  std::vector<double> upgraded;
  /// True iff no competitor dominates the product (cost 0, unchanged).
  bool already_competitive = false;
};

/// Work counters shared by all top-k algorithms; used by tests, the
/// ablation benches, and for explaining performance differences.
struct ExecStats {
  size_t products_processed = 0;   ///< candidates whose cost was computed
  size_t dominators_fetched = 0;   ///< points retrieved as dominators
  size_t skyline_points_total = 0; ///< sum of dominator-skyline sizes
  size_t upgrade_calls = 0;        ///< invocations of Algorithm 1
  size_t heap_pops = 0;            ///< join/BBS priority-queue pops
  size_t t_expansions = 0;         ///< join: T-side node expansions
  size_t p_refinements = 0;        ///< join: P-side join-list refinements
  size_t lbc_evaluations = 0;      ///< pairwise LBC computations
  size_t jl_entries_pruned = 0;    ///< join-list entries dropped by mutual
                                   ///< dominance (Alg. 4 lines 25-30)
};

}  // namespace skyup

#endif  // SKYUP_CORE_UPGRADE_RESULT_H_
