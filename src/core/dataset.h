#ifndef SKYUP_CORE_DATASET_H_
#define SKYUP_CORE_DATASET_H_

#include <string>
#include <vector>

#include "core/point.h"
#include "util/status.h"

namespace skyup {

/// A fixed-dimensionality, append-only point collection with flat
/// (row-major, contiguous) storage.
///
/// `Dataset` is the substrate every algorithm operates on: R-trees index a
/// dataset by `PointId` (row index), skyline/upgrade routines read raw
/// coordinate pointers from it. Storage is contiguous so a point view is a
/// pointer into a single allocation.
class Dataset {
 public:
  /// Creates an empty dataset of the given dimensionality (must be >= 1).
  explicit Dataset(size_t dims);

  /// Builds a dataset from row vectors; all rows must share one arity >= 1.
  static Result<Dataset> FromRows(const std::vector<std::vector<double>>& rows);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Appends a point and returns its id. `coords` size must equal `dims()`.
  PointId Add(const std::vector<double>& coords);

  /// Appends from a raw pointer of `dims()` values. `coords` may alias
  /// this dataset's own storage (self-append is handled safely even when
  /// the append reallocates).
  PointId Add(const double* coords);

  /// Pre-allocates storage for `n` points.
  void Reserve(size_t n);

  size_t dims() const { return dims_; }
  size_t size() const { return storage_.size() / dims_; }
  bool empty() const { return storage_.empty(); }

  /// Raw coordinates of point `id`; valid while the dataset is alive and
  /// not reallocated by further `Add` calls.
  const double* data(PointId id) const {
    return storage_.data() + static_cast<size_t>(id) * dims_;
  }

  PointView point(PointId id) const { return PointView(data(id), dims_); }

  /// Owning copy of point `id`.
  Point Materialize(PointId id) const;

  /// Componentwise minimum / maximum corner over all points. Dataset must
  /// be non-empty.
  std::vector<double> MinCorner() const;
  std::vector<double> MaxCorner() const;

 private:
  size_t dims_;
  std::vector<double> storage_;
};

}  // namespace skyup

#endif  // SKYUP_CORE_DATASET_H_
