#include "core/point.h"

#include <sstream>

namespace skyup {

std::string PointToString(const double* p, size_t dims) {
  std::ostringstream out;
  out.precision(6);
  out << '(';
  for (size_t i = 0; i < dims; ++i) {
    if (i > 0) out << ", ";
    out << p[i];
  }
  out << ')';
  return out.str();
}

std::string PointToString(const std::vector<double>& p) {
  return PointToString(p.data(), p.size());
}

}  // namespace skyup
