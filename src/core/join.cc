#include "core/join.h"

#include <algorithm>
#include <limits>

#include "core/dominance.h"
#include "core/single_upgrade.h"
#include "obs/trace.h"
#include "skyline/dominating_skyline.h"
#include "util/logging.h"

namespace skyup {

Result<JoinCursor> JoinCursor::Create(const RTree* competitors_tree,
                                      const RTree* products_tree,
                                      const ProductCostFunction* cost_fn,
                                      JoinOptions options) {
  if (competitors_tree == nullptr || products_tree == nullptr ||
      cost_fn == nullptr) {
    return Status::InvalidArgument("join cursor requires non-null inputs");
  }
  if (competitors_tree->empty()) {
    return Status::InvalidArgument("competitor tree is empty");
  }
  if (products_tree->empty()) {
    return Status::InvalidArgument("product tree is empty");
  }
  const size_t dims = products_tree->dataset().dims();
  if (competitors_tree->dataset().dims() != dims) {
    return Status::InvalidArgument(
        "competitor and product dimensionality differ");
  }
  if (cost_fn->dims() != dims) {
    return Status::InvalidArgument(
        "cost function dimensionality does not match the data");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return JoinCursor(competitors_tree, products_tree, cost_fn, options);
}

JoinCursor::JoinCursor(const RTree* competitors_tree,
                       const RTree* products_tree,
                       const ProductCostFunction* cost_fn, JoinOptions options)
    : rp_(competitors_tree),
      rt_(products_tree),
      cost_fn_(cost_fn),
      options_(options),
      dims_(products_tree->dataset().dims()) {
  // Seed: join R_T's root with the singleton {R_P's root} (Alg. 4 line 2),
  // filtered by the ADR overlap test so a fully advantaged T-tree starts
  // with an empty join list.
  HeapItem seed;
  seed.seq = seq_++;
  seed.et = EntryRef{rt_->root(), kInvalidPointId};
  const EntryRef proot{rp_->root(), kInvalidPointId};
  if (DominatesOrEqual(PMin(proot), TMax(seed.et), dims_)) {
    seed.jl.push_back(proot);
  }
  seed.cost = JoinListBound(TMin(seed.et), seed.jl, nullptr);
  Push(std::move(seed));
}

const double* JoinCursor::PMin(const EntryRef& e) const {
  return e.is_node() ? e.node->mbr.min_data() : rp_->dataset().data(e.point);
}
const double* JoinCursor::PMax(const EntryRef& e) const {
  return e.is_node() ? e.node->mbr.max_data() : rp_->dataset().data(e.point);
}
const double* JoinCursor::TMin(const EntryRef& e) const {
  return e.is_node() ? e.node->mbr.min_data() : rt_->dataset().data(e.point);
}
const double* JoinCursor::TMax(const EntryRef& e) const {
  return e.is_node() ? e.node->mbr.max_data() : rt_->dataset().data(e.point);
}

double JoinCursor::JoinListBound(const double* et_min,
                                 const std::vector<EntryRef>& jl,
                                 std::vector<double>* pair_lbcs) const {
  std::vector<EntryBounds> bounds;
  bounds.reserve(jl.size());
  for (const EntryRef& e : jl) bounds.push_back({PMin(e), PMax(e)});
  stats_.lbc_evaluations += jl.size();
  if (pair_lbcs == nullptr) {
    return LbcJoinList(et_min, bounds, dims_, *cost_fn_,
                       options_.lower_bound, options_.bound_mode);
  }
  return LbcJoinListWithDetails(et_min, bounds, dims_, *cost_fn_,
                                options_.lower_bound, options_.bound_mode,
                                pair_lbcs);
}

void JoinCursor::EnableTelemetry() {
  if (telemetry_ == nullptr) telemetry_ = std::make_unique<ShardTelemetry>();
}

void JoinCursor::FlushTelemetry(QueryTelemetry* out) const {
  if (telemetry_ != nullptr && out != nullptr) telemetry_->FlushInto(out);
}

std::optional<UpgradeResult> JoinCursor::Next() {
  ShardTelemetry* tel = telemetry_.get();
  // Heap pops and the expand/refine bookkeeping around them have no named
  // phase; close them into `other` so the lap chain stays gapless.
  LapOther(tel);
  while (!heap_.empty()) {
    HeapItem item = std::move(const_cast<HeapItem&>(heap_.top()));
    heap_.pop();
    ++stats_.heap_pops;

    if (item.exact) {
      // Cheapest possible remaining answer: everything else on the heap
      // has priority (a valid lower bound) >= this exact cost.
      UpgradeResult result;
      result.product_id = item.et.point;
      result.cost = item.cost;
      result.upgraded = std::move(item.upgraded);
      result.already_competitive = item.competitive;
      return result;
    }

    if (!item.et.is_node()) {
      if (options_.refine_zero_bound_leaves && item.cost <= 0.0) {
        // A zero bound only means the join list is still too coarse to
        // constrain this product; refine it before paying for the exact
        // cost (see JoinOptions::refine_zero_bound_leaves).
        std::optional<size_t> pick = ChooseJlEntry(item);
        LapPrune(tel);
        if (pick.has_value()) {
          RefineJl(std::move(item), *pick);
          continue;
        }
      }
      ComputeExact(std::move(item));
      continue;
    }

    if (item.cost <= 0.0) {
      // Heuristic 1.
      ExpandT(std::move(item));
      continue;
    }
    // Heuristic 2 (via 3/4): refine the P side if possible.
    std::optional<size_t> pick = ChooseJlEntry(item);
    LapPrune(tel);
    if (pick.has_value()) {
      RefineJl(std::move(item), *pick);
    } else {
      // No node entry left to refine: descend the T side instead (see
      // DESIGN.md on edge cases).
      ExpandT(std::move(item));
    }
  }
  return std::nullopt;
}

void JoinCursor::ComputeExact(HeapItem item) {
  ShardTelemetry* tel = telemetry_.get();
  LapOther(tel);
  const double* t = rt_->dataset().data(item.et.point);
  // The skyline of t's dominators below the join list (Alg. 4 line 9),
  // via a best-first, skyline-pruned traversal seeded from every join-list
  // entry — the same machinery as getDominatingSky (Algorithm 3).
  std::vector<const RTreeNode*> roots;
  std::vector<PointId> point_entries;
  for (const EntryRef& e : item.jl) {
    if (e.is_node()) {
      roots.push_back(e.node);
    } else {
      point_entries.push_back(e.point);
    }
  }
  ProbeStats probe;
  const std::vector<PointId> sky_ids = DominatingSkylineFrom(
      rp_->dataset(), roots, point_entries, t, &probe);
  stats_.heap_pops += probe.heap_pops;
  stats_.dominators_fetched += sky_ids.size();
  stats_.skyline_points_total += sky_ids.size();
  LapProbe(tel);

  std::vector<const double*> dominators;
  dominators.reserve(sky_ids.size());
  for (PointId id : sky_ids) dominators.push_back(rp_->dataset().data(id));

  ++stats_.upgrade_calls;
  ++stats_.products_processed;
  UpgradeOutcome outcome =
      UpgradeProduct(dominators, t, dims_, *cost_fn_, options_.epsilon);
  LapUpgrade(tel);

  HeapItem exact;
  exact.cost = outcome.cost;
  exact.seq = seq_++;
  exact.exact = true;
  exact.competitive = outcome.already_competitive;
  exact.et = item.et;
  exact.upgraded = std::move(outcome.upgraded);
  Push(std::move(exact));
}

void JoinCursor::ExpandT(HeapItem item) {
  ShardTelemetry* tel = telemetry_.get();
  LapOther(tel);
  ++stats_.t_expansions;
  const RTreeNode* node = item.et.node;
  SKYUP_DCHECK(node != nullptr);

  auto push_child = [&](EntryRef child) {
    HeapItem next;
    next.seq = seq_++;
    next.et = child;
    const double* cmax = TMax(child);
    for (const EntryRef& e : item.jl) {
      // Keep competitors whose MBR intersects ADR(child.max) — they may
      // contain dominators of some product under `child`.
      if (DominatesOrEqual(PMin(e), cmax, dims_)) next.jl.push_back(e);
    }
    next.cost = JoinListBound(TMin(child), next.jl, nullptr);
    Push(std::move(next));
  };

  if (node->is_leaf()) {
    for (PointId id : node->points) {
      push_child(EntryRef{nullptr, id});
    }
  } else {
    for (const auto& child : node->children) {
      push_child(EntryRef{child.get(), kInvalidPointId});
    }
  }
  // The per-child JoinListBound evaluations are the join's pruning work.
  LapPrune(tel);
}

std::optional<size_t> JoinCursor::ChooseJlEntry(const HeapItem& item) const {
  std::vector<double> pair_lbcs;
  const double* et_min = TMin(item.et);
  JoinListBound(et_min, item.jl, &pair_lbcs);

  if (options_.lower_bound == LowerBoundKind::kAggressive) {
    // Heuristic 4: prefer the node entry whose pairwise LBC realizes the
    // overall ALB value.
    const double bound = item.cost;
    for (size_t i = 0; i < item.jl.size(); ++i) {
      if (item.jl[i].is_node() && pair_lbcs[i] == bound &&
          pair_lbcs[i] > 0.0) {
        return i;
      }
    }
    // Fall through to the Heuristic 3 rule if the achiever is a point.
  }

  // Heuristic 3: the node entry with the minimum positive LBC.
  std::optional<size_t> best;
  for (size_t i = 0; i < item.jl.size(); ++i) {
    if (!item.jl[i].is_node() || pair_lbcs[i] <= 0.0) continue;
    if (!best.has_value() || pair_lbcs[i] < pair_lbcs[*best]) best = i;
  }
  if (best.has_value()) return best;

  // All positive entries are points; refining any remaining node entry
  // (necessarily zero-LBC) still tightens future bounds.
  for (size_t i = 0; i < item.jl.size(); ++i) {
    if (item.jl[i].is_node()) return i;
  }
  return std::nullopt;
}

void JoinCursor::RefineJl(HeapItem item, size_t pick) {
  ShardTelemetry* tel = telemetry_.get();
  LapOther(tel);
  ++stats_.p_refinements;
  SKYUP_DCHECK(pick < item.jl.size() && item.jl[pick].is_node());
  const RTreeNode* chosen = item.jl[pick].node;
  item.jl.erase(item.jl.begin() + static_cast<ptrdiff_t>(pick));

  const double* et_max = TMax(item.et);
  auto handle_child = [&](EntryRef child) {
    const double* cmin = PMin(child);
    // Line 24: skip children that cannot dominate anything in e_T.
    if (!DominatesOrEqual(cmin, et_max, dims_)) return;
    if (options_.mutual_dominance_pruning) {
      const double* cmax = PMax(child);
      // Lines 25-30: drop the child if an existing entry's worst corner
      // dominates its best corner; conversely evict entries the child
      // fully dominates. (Any entry such a dropped child would evict is
      // evicted transitively by the entry that dominated the child, so
      // checking the drop first loses nothing.)
      for (const EntryRef& e : item.jl) {
        if (Dominates(PMax(e), cmin, dims_)) {
          ++stats_.jl_entries_pruned;
          return;
        }
      }
      size_t keep = 0;
      for (size_t i = 0; i < item.jl.size(); ++i) {
        if (Dominates(cmax, PMin(item.jl[i]), dims_)) {
          ++stats_.jl_entries_pruned;
          continue;
        }
        item.jl[keep++] = item.jl[i];
      }
      item.jl.resize(keep);
    }
    item.jl.push_back(child);
  };

  if (chosen->is_leaf()) {
    for (PointId id : chosen->points) handle_child(EntryRef{nullptr, id});
  } else {
    for (const auto& child : chosen->children) {
      handle_child(EntryRef{child.get(), kInvalidPointId});
    }
  }

  item.cost = JoinListBound(TMin(item.et), item.jl, nullptr);
  item.seq = seq_++;
  Push(std::move(item));
  // Mutual-dominance filtering + the refreshed bound are pruning work.
  LapPrune(tel);
}

Result<std::vector<UpgradeResult>> TopKJoin(const RTree& competitors_tree,
                                            const RTree& products_tree,
                                            const ProductCostFunction& cost_fn,
                                            size_t k, JoinOptions options,
                                            ExecStats* stats,
                                            QueryTelemetry* telemetry) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  SKYUP_TRACE_SPAN("topk/join");
  Result<JoinCursor> cursor =
      JoinCursor::Create(&competitors_tree, &products_tree, &cost_fn, options);
  if (!cursor.ok()) return cursor.status();
  if (telemetry != nullptr) cursor->EnableTelemetry();

  std::vector<UpgradeResult> results;
  results.reserve(k);
  while (results.size() < k) {
    std::optional<UpgradeResult> next = cursor->Next();
    if (!next.has_value()) break;
    results.push_back(std::move(*next));
  }
  if (stats != nullptr) *stats = cursor->stats();
  cursor->FlushTelemetry(telemetry);
  return results;
}

}  // namespace skyup
