#ifndef SKYUP_CORE_COST_FUNCTION_H_
#define SKYUP_CORE_COST_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace skyup {

/// An attribute cost function `f_a : D -> R` (Definition 4): the
/// manufacturing cost implied by one attribute value.
///
/// Because smaller attribute values are better, implementations must be
/// monotonically *non-increasing* in the attribute value: improving
/// (decreasing) an attribute never decreases the cost. This yields the
/// paper's product-level monotonicity `p1 < p2  =>  f_p(p1) >= f_p(p2)`.
class AttributeCostFunction {
 public:
  virtual ~AttributeCostFunction() = default;

  /// Cost of manufacturing attribute value `value`.
  virtual double Cost(double value) const = 0;

  /// Diagnostic name, e.g. "reciprocal(delta=0.001)".
  virtual std::string name() const = 0;
};

/// The paper's experimental attribute cost: `f_a(x) = 1 / (x + delta)`.
///
/// `delta` keeps the function finite when upgrades push attribute values
/// toward (or slightly below) zero; it is intentionally distinct from the
/// upgrade step epsilon (see DESIGN.md).
class ReciprocalCost final : public AttributeCostFunction {
 public:
  explicit ReciprocalCost(double delta = 1e-3);

  double Cost(double value) const override;
  std::string name() const override;

  double delta() const { return delta_; }

 private:
  double delta_;
};

/// Affine attribute cost `f_a(x) = intercept - slope * x` with slope >= 0.
class LinearCost final : public AttributeCostFunction {
 public:
  LinearCost(double intercept, double slope);

  double Cost(double value) const override;
  std::string name() const override;

 private:
  double intercept_;
  double slope_;
};

/// Exponential attribute cost `f_a(x) = scale * exp(-rate * x)`, rate >= 0.
/// Models attributes where pushing toward the best values gets
/// exponentially more expensive.
class ExponentialCost final : public AttributeCostFunction {
 public:
  ExponentialCost(double scale, double rate);

  double Cost(double value) const override;
  std::string name() const override;

 private:
  double scale_;
  double rate_;
};

/// Power-law attribute cost `f_a(x) = scale * (x + delta)^-exponent`.
class PowerCost final : public AttributeCostFunction {
 public:
  PowerCost(double scale, double exponent, double delta = 1e-3);

  double Cost(double value) const override;
  std::string name() const override;

 private:
  double scale_;
  double exponent_;
  double delta_;
};

/// A product cost function `f_p : D^c -> R` (Definitions 5-7): the weighted
/// sum of per-dimension attribute costs.
///
/// With unit weights this is the paper's summation integration function
/// `F_sum` (Equation 1); with custom weights it is `F_wgt`.
class ProductCostFunction {
 public:
  /// Unit-weight (summation) integration of per-dimension attribute costs.
  /// `per_dim` must be non-empty and contain no null entries.
  static Result<ProductCostFunction> Sum(
      std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim);

  /// Weighted integration; `weights` must match `per_dim` in size and be
  /// non-negative.
  static Result<ProductCostFunction> WeightedSum(
      std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim,
      std::vector<double> weights);

  /// Convenience: the paper's experimental setting, `sum_i 1/(x_i + delta)`
  /// over `dims` dimensions.
  static ProductCostFunction ReciprocalSum(size_t dims, double delta = 1e-3);

  size_t dims() const { return per_dim_.size(); }

  /// Total product cost `f_p(p)` for a point of `dims()` coordinates.
  double Cost(const double* p) const;
  double Cost(const std::vector<double>& p) const;

  /// Weighted cost contribution of dimension `dim` at attribute `value`,
  /// i.e. `w_dim * f_a^dim(value)`.
  double AttributeCost(size_t dim, double value) const;

  /// Cost delta `f_p(upgraded) - f_p(original)` (Definition 7's
  /// `cost_up` once `upgraded` is non-dominated).
  double UpgradeCost(const double* original, const double* upgraded) const;

  const AttributeCostFunction& attribute_function(size_t dim) const {
    return *per_dim_[dim];
  }
  double weight(size_t dim) const { return weights_[dim]; }

  /// Samples `samples` random dominance-comparable point pairs inside
  /// `[lo, hi]^dims` and verifies product-level monotonicity
  /// (`p1` dominates `p2` implies `Cost(p1) >= Cost(p2) - tol`). Returns
  /// FailedPrecondition naming the violating pair otherwise.
  Status CheckMonotonicity(double lo, double hi, size_t samples = 256,
                           uint64_t seed = 42) const;

 private:
  ProductCostFunction(
      std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim,
      std::vector<double> weights);

  std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim_;
  std::vector<double> weights_;
};

}  // namespace skyup

#endif  // SKYUP_CORE_COST_FUNCTION_H_
