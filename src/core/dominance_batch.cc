#include "core/dominance_batch.h"

#include <algorithm>

#if defined(SKYUP_SIMD) && defined(__x86_64__)
#define SKYUP_HAVE_AVX2_PATH 1
#include <immintrin.h>
#else
#define SKYUP_HAVE_AVX2_PATH 0
#endif

namespace skyup {

void SoaBlock::Append(const double* p) {
  if (count_ == capacity_) Grow(capacity_ == 0 ? 64 : capacity_ * 2);
  for (size_t d = 0; d < dims_; ++d) data_[d * capacity_ + count_] = p[d];
  ++count_;
}

void SoaBlock::Grow(size_t new_capacity) {
  std::vector<double> next(dims_ * new_capacity);
  for (size_t d = 0; d < dims_; ++d) {
    std::copy_n(data_.data() + d * capacity_, count_,
                next.data() + d * new_capacity);
  }
  data_ = std::move(next);
  capacity_ = new_capacity;
}

bool DominatesAnyScalar(const SoaView& block, const double* q) {
  for (size_t i = 0; i < block.count; ++i) {
    bool le = true;
    for (size_t d = 0; d < block.dims && le; ++d) {
      le = block.dim(d)[i] <= q[d];
    }
    if (le) return true;
  }
  return false;
}

size_t FilterDominatedScalar(const SoaView& block, const double* q,
                             std::vector<uint32_t>* out, bool strict) {
  size_t appended = 0;
  for (size_t i = 0; i < block.count; ++i) {
    bool le = true;
    bool lt = false;
    for (size_t d = 0; d < block.dims && le; ++d) {
      const double v = block.dim(d)[i];
      le = v <= q[d];
      lt = lt || v < q[d];
    }
    if (le && (lt || !strict)) {
      out->push_back(static_cast<uint32_t>(i));
      ++appended;
    }
  }
  return appended;
}

void ClassifyBlockScalar(const SoaView& block, const double* q,
                         DomRelation* out) {
  for (size_t i = 0; i < block.count; ++i) {
    bool a_le = true;  // lane <= q on every dimension
    bool b_le = true;  // q <= lane on every dimension
    for (size_t d = 0; d < block.dims && (a_le || b_le); ++d) {
      const double v = block.dim(d)[i];
      a_le = a_le && v <= q[d];
      b_le = b_le && q[d] <= v;
    }
    if (a_le && b_le) {
      out[i] = DomRelation::kEqual;
    } else if (a_le) {
      out[i] = DomRelation::kDominates;
    } else if (b_le) {
      out[i] = DomRelation::kDominatedBy;
    } else {
      out[i] = DomRelation::kIncomparable;
    }
  }
}

void TileDominanceMasksScalar(const SoaView& block, const double* const* tile,
                              size_t tile_count, bool strict,
                              uint64_t* masks) {
  for (size_t i = 0; i < block.count; ++i) {
    uint64_t mask = 0;
    for (size_t j = 0; j < tile_count; ++j) {
      const double* q = tile[j];
      bool le = true;
      bool lt = false;
      for (size_t d = 0; d < block.dims && le; ++d) {
        const double v = block.dim(d)[i];
        le = v <= q[d];
        lt = lt || v < q[d];
      }
      if (le && (lt || !strict)) mask |= uint64_t{1} << j;
    }
    masks[i] = mask;
  }
}

#if SKYUP_HAVE_AVX2_PATH

namespace {

// Four 64-bit lanes, all bits set — the "still a candidate" mask seed.
__attribute__((target("avx2"))) inline __m256d AllOnes() {
  return _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
}

__attribute__((target("avx2"))) bool DominatesAnyAvx2(const SoaView& block,
                                                      const double* q) {
  size_t i = 0;
  for (; i + 4 <= block.count; i += 4) {
    __m256d le = AllOnes();
    for (size_t d = 0; d < block.dims; ++d) {
      const __m256d v = _mm256_loadu_pd(block.dim(d) + i);
      le = _mm256_and_pd(le, _mm256_cmp_pd(v, _mm256_set1_pd(q[d]),
                                           _CMP_LE_OQ));
      if (_mm256_movemask_pd(le) == 0) break;  // group fully disqualified
    }
    if (_mm256_movemask_pd(le) != 0) return true;
  }
  for (; i < block.count; ++i) {
    bool le = true;
    for (size_t d = 0; d < block.dims && le; ++d) {
      le = block.dim(d)[i] <= q[d];
    }
    if (le) return true;
  }
  return false;
}

__attribute__((target("avx2"))) size_t
FilterDominatedAvx2(const SoaView& block, const double* q,
                    std::vector<uint32_t>* out, bool strict) {
  size_t appended = 0;
  size_t i = 0;
  for (; i + 4 <= block.count; i += 4) {
    __m256d le = AllOnes();
    __m256d lt = _mm256_setzero_pd();
    for (size_t d = 0; d < block.dims; ++d) {
      const __m256d v = _mm256_loadu_pd(block.dim(d) + i);
      const __m256d qd = _mm256_set1_pd(q[d]);
      le = _mm256_and_pd(le, _mm256_cmp_pd(v, qd, _CMP_LE_OQ));
      lt = _mm256_or_pd(lt, _mm256_cmp_pd(v, qd, _CMP_LT_OQ));
      if (_mm256_movemask_pd(le) == 0) break;
    }
    int mask = _mm256_movemask_pd(le);
    if (strict) mask &= _mm256_movemask_pd(lt);
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(static_cast<uint32_t>(i + static_cast<size_t>(bit)));
      ++appended;
      mask &= mask - 1;
    }
  }
  for (; i < block.count; ++i) {
    bool le = true;
    bool lt = false;
    for (size_t d = 0; d < block.dims && le; ++d) {
      const double v = block.dim(d)[i];
      le = v <= q[d];
      lt = lt || v < q[d];
    }
    if (le && (lt || !strict)) {
      out->push_back(static_cast<uint32_t>(i));
      ++appended;
    }
  }
  return appended;
}

__attribute__((target("avx2"))) void ClassifyBlockAvx2(const SoaView& block,
                                                       const double* q,
                                                       DomRelation* out) {
  size_t i = 0;
  for (; i + 4 <= block.count; i += 4) {
    __m256d a_le = AllOnes();  // lane <= q everywhere
    __m256d b_le = AllOnes();  // q <= lane everywhere
    for (size_t d = 0; d < block.dims; ++d) {
      const __m256d v = _mm256_loadu_pd(block.dim(d) + i);
      const __m256d qd = _mm256_set1_pd(q[d]);
      a_le = _mm256_and_pd(a_le, _mm256_cmp_pd(v, qd, _CMP_LE_OQ));
      b_le = _mm256_and_pd(b_le, _mm256_cmp_pd(qd, v, _CMP_LE_OQ));
    }
    const int am = _mm256_movemask_pd(a_le);
    const int bm = _mm256_movemask_pd(b_le);
    for (int lane = 0; lane < 4; ++lane) {
      const bool a = (am >> lane) & 1;
      const bool b = (bm >> lane) & 1;
      out[i + static_cast<size_t>(lane)] =
          a ? (b ? DomRelation::kEqual : DomRelation::kDominates)
            : (b ? DomRelation::kDominatedBy : DomRelation::kIncomparable);
    }
  }
  if (i < block.count) {
    SoaView tail = block;
    tail.data += i;
    tail.count -= i;
    ClassifyBlockScalar(tail, q, out + i);
  }
}

// Register-blocked multi-query sweep: four block lanes wide (one __m256d),
// four tile members deep (eight live accumulators + the shared coordinate
// load fit comfortably in the sixteen ymm registers). Each coordinate
// vector of the block is loaded once per tile chunk and compared against
// every member of the chunk, amortizing the memory traffic the per-query
// kernels pay `tile_count` times.
__attribute__((target("avx2"))) void TileDominanceMasksAvx2(
    const SoaView& block, const double* const* tile, size_t tile_count,
    bool strict, uint64_t* masks) {
  size_t i = 0;
  for (; i + 4 <= block.count; i += 4) {
    uint64_t m[4] = {0, 0, 0, 0};
    for (size_t jc = 0; jc < tile_count; jc += 4) {
      const size_t width = tile_count - jc < 4 ? tile_count - jc : 4;
      __m256d le[4];
      __m256d lt[4];
      for (size_t jj = 0; jj < width; ++jj) {
        le[jj] = AllOnes();
        lt[jj] = _mm256_setzero_pd();
      }
      for (size_t d = 0; d < block.dims; ++d) {
        const __m256d v = _mm256_loadu_pd(block.dim(d) + i);
        for (size_t jj = 0; jj < width; ++jj) {
          const __m256d qd = _mm256_set1_pd(tile[jc + jj][d]);
          le[jj] = _mm256_and_pd(le[jj], _mm256_cmp_pd(v, qd, _CMP_LE_OQ));
          lt[jj] = _mm256_or_pd(lt[jj], _mm256_cmp_pd(v, qd, _CMP_LT_OQ));
        }
      }
      for (size_t jj = 0; jj < width; ++jj) {
        int bits = _mm256_movemask_pd(le[jj]);
        if (strict) bits &= _mm256_movemask_pd(lt[jj]);
        while (bits != 0) {
          const int lane = __builtin_ctz(static_cast<unsigned>(bits));
          m[lane] |= uint64_t{1} << (jc + jj);
          bits &= bits - 1;
        }
      }
    }
    for (size_t lane = 0; lane < 4; ++lane) masks[i + lane] = m[lane];
  }
  if (i < block.count) {
    SoaView tail = block;
    tail.data += i;
    tail.count -= i;
    TileDominanceMasksScalar(tail, tile, tile_count, strict, masks + i);
  }
}

}  // namespace

#endif  // SKYUP_HAVE_AVX2_PATH

namespace {

bool UseAvx2() {
#if SKYUP_HAVE_AVX2_PATH
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

}  // namespace

bool DominatesAny(const SoaView& block, const double* q) {
#if SKYUP_HAVE_AVX2_PATH
  if (UseAvx2()) return DominatesAnyAvx2(block, q);
#endif
  return DominatesAnyScalar(block, q);
}

size_t FilterDominated(const SoaView& block, const double* q,
                       std::vector<uint32_t>* out, bool strict) {
#if SKYUP_HAVE_AVX2_PATH
  if (UseAvx2()) return FilterDominatedAvx2(block, q, out, strict);
#endif
  return FilterDominatedScalar(block, q, out, strict);
}

void ClassifyBlock(const SoaView& block, const double* q, DomRelation* out) {
#if SKYUP_HAVE_AVX2_PATH
  if (UseAvx2()) {
    ClassifyBlockAvx2(block, q, out);
    return;
  }
#endif
  ClassifyBlockScalar(block, q, out);
}

void TileDominanceMasks(const SoaView& block, const double* const* tile,
                        size_t tile_count, bool strict, uint64_t* masks) {
#if SKYUP_HAVE_AVX2_PATH
  if (UseAvx2()) {
    TileDominanceMasksAvx2(block, tile, tile_count, strict, masks);
    return;
  }
#endif
  TileDominanceMasksScalar(block, tile, tile_count, strict, masks);
}

const char* BatchKernelName() { return UseAvx2() ? "avx2" : "scalar"; }

}  // namespace skyup
