#include "core/report.h"

#include <cstdio>

namespace skyup {

Result<ReportFormat> ParseReportFormat(const std::string& name) {
  if (name == "text") return ReportFormat::kText;
  if (name == "csv") return ReportFormat::kCsv;
  if (name == "json") return ReportFormat::kJson;
  return Status::InvalidArgument("unknown report format '" + name +
                                 "' (expected text, csv, or json)");
}

const char* ReportFormatName(ReportFormat format) {
  switch (format) {
    case ReportFormat::kText:
      return "text";
    case ReportFormat::kCsv:
      return "csv";
    case ReportFormat::kJson:
      return "json";
  }
  return "?";
}

namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void WriteText(const std::vector<UpgradeResult>& results, std::ostream& out) {
  out << "rank  product  cost          status       upgraded\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const UpgradeResult& r = results[i];
    char head[96];
    std::snprintf(head, sizeof(head), "%-5zu %-8lld %-13.6g %-12s ", i + 1,
                  static_cast<long long>(r.product_id), r.cost,
                  r.already_competitive ? "competitive" : "dominated");
    out << head << "(";
    for (size_t d = 0; d < r.upgraded.size(); ++d) {
      if (d > 0) out << ", ";
      out << Num(r.upgraded[d]);
    }
    out << ")\n";
  }
}

void WriteCsv(const std::vector<UpgradeResult>& results, std::ostream& out) {
  for (size_t i = 0; i < results.size(); ++i) {
    const UpgradeResult& r = results[i];
    out << i + 1 << ',' << r.product_id << ',' << Num(r.cost) << ','
        << (r.already_competitive ? 1 : 0);
    for (double v : r.upgraded) out << ',' << Num(v);
    out << '\n';
  }
}

void WriteJson(const std::vector<UpgradeResult>& results, std::ostream& out) {
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const UpgradeResult& r = results[i];
    out << "  {\"rank\": " << i + 1 << ", \"product\": " << r.product_id
        << ", \"cost\": " << Num(r.cost) << ", \"competitive\": "
        << (r.already_competitive ? "true" : "false") << ", \"upgraded\": [";
    for (size_t d = 0; d < r.upgraded.size(); ++d) {
      if (d > 0) out << ", ";
      out << Num(r.upgraded[d]);
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

void WriteReport(const std::vector<UpgradeResult>& results,
                 ReportFormat format, std::ostream& out) {
  switch (format) {
    case ReportFormat::kText:
      WriteText(results, out);
      return;
    case ReportFormat::kCsv:
      WriteCsv(results, out);
      return;
    case ReportFormat::kJson:
      WriteJson(results, out);
      return;
  }
}

}  // namespace skyup
