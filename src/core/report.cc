#include "core/report.h"

#include <cstdio>

namespace skyup {

Result<ReportFormat> ParseReportFormat(const std::string& name) {
  if (name == "text") return ReportFormat::kText;
  if (name == "csv") return ReportFormat::kCsv;
  if (name == "json") return ReportFormat::kJson;
  return Status::InvalidArgument("unknown report format '" + name +
                                 "' (expected text, csv, or json)");
}

const char* ReportFormatName(ReportFormat format) {
  switch (format) {
    case ReportFormat::kText:
      return "text";
    case ReportFormat::kCsv:
      return "csv";
    case ReportFormat::kJson:
      return "json";
  }
  return "?";
}

namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void WriteText(const std::vector<UpgradeResult>& results, std::ostream& out) {
  out << "rank  product  cost          status       upgraded\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const UpgradeResult& r = results[i];
    char head[96];
    std::snprintf(head, sizeof(head), "%-5zu %-8lld %-13.6g %-12s ", i + 1,
                  static_cast<long long>(r.product_id), r.cost,
                  r.already_competitive ? "competitive" : "dominated");
    out << head << "(";
    for (size_t d = 0; d < r.upgraded.size(); ++d) {
      if (d > 0) out << ", ";
      out << Num(r.upgraded[d]);
    }
    out << ")\n";
  }
}

void WriteCsv(const std::vector<UpgradeResult>& results, std::ostream& out) {
  for (size_t i = 0; i < results.size(); ++i) {
    const UpgradeResult& r = results[i];
    out << i + 1 << ',' << r.product_id << ',' << Num(r.cost) << ','
        << (r.already_competitive ? 1 : 0);
    for (double v : r.upgraded) out << ',' << Num(v);
    out << '\n';
  }
}

void WriteJson(const std::vector<UpgradeResult>& results, std::ostream& out) {
  out << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const UpgradeResult& r = results[i];
    out << "  {\"rank\": " << i + 1 << ", \"product\": " << r.product_id
        << ", \"cost\": " << Num(r.cost) << ", \"competitive\": "
        << (r.already_competitive ? "true" : "false") << ", \"upgraded\": [";
    for (size_t d = 0; d < r.upgraded.size(); ++d) {
      if (d > 0) out << ", ";
      out << Num(r.upgraded[d]);
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

void WriteReport(const std::vector<UpgradeResult>& results,
                 ReportFormat format, std::ostream& out) {
  switch (format) {
    case ReportFormat::kText:
      WriteText(results, out);
      return;
    case ReportFormat::kCsv:
      WriteCsv(results, out);
      return;
    case ReportFormat::kJson:
      WriteJson(results, out);
      return;
  }
}

void AddExecStatsMetrics(const ExecStats& stats, MetricsRegistry* registry) {
  // Tripwire (the ExecStats::MergeFrom pattern): a new ExecStats field
  // changes the struct size and breaks this assert until the field gets a
  // registered counter below.
  static_assert(sizeof(ExecStats) == 14 * sizeof(size_t),
                "ExecStats gained/lost a field: register it here");
  auto add = [registry](const char* name, const char* help, size_t value) {
    registry->AddCounter(name, help)->Increment(value);
  };
  add("skyup_products_processed_total", "candidates examined (incl. pruned)",
      stats.products_processed);
  add("skyup_dominators_fetched_total", "points retrieved as dominators",
      stats.dominators_fetched);
  add("skyup_skyline_points_total", "sum of dominator-skyline sizes",
      stats.skyline_points_total);
  add("skyup_upgrade_calls_total", "invocations of Algorithm 1",
      stats.upgrade_calls);
  add("skyup_heap_pops_total", "join/BBS priority-queue pops",
      stats.heap_pops);
  add("skyup_t_expansions_total", "join: T-side node expansions",
      stats.t_expansions);
  add("skyup_p_refinements_total", "join: P-side join-list refinements",
      stats.p_refinements);
  add("skyup_lbc_evaluations_total", "pairwise LBC computations",
      stats.lbc_evaluations);
  add("skyup_jl_entries_pruned_total",
      "join-list entries dropped by mutual dominance",
      stats.jl_entries_pruned);
  add("skyup_candidates_pruned_total",
      "candidates skipped by the sound lower-bound prune",
      stats.candidates_pruned);
  add("skyup_threshold_updates_total",
      "successful lowerings of the shared parallel cost threshold",
      stats.threshold_updates);
  add("skyup_nodes_visited_total", "index nodes expanded by probe traversals",
      stats.nodes_visited);
  add("skyup_points_scanned_total", "leaf points examined by probe traversals",
      stats.points_scanned);
  add("skyup_block_kernel_calls_total",
      "batched SIMD/SoA dominance-kernel invocations",
      stats.block_kernel_calls);
}

void AddTelemetryMetrics(const QueryTelemetry& telemetry,
                         MetricsRegistry* registry) {
  const PhaseTimings& total = telemetry.phases.total;
  auto gauge = [registry](const char* name, const char* help, double value) {
    registry->AddGauge(name, help)->Set(value);
  };
  gauge("skyup_phase_probe_seconds", "index traversal / dominator fetch",
        total.probe_seconds);
  gauge("skyup_phase_skyline_seconds", "dominator-skyline reduction",
        total.skyline_seconds);
  gauge("skyup_phase_upgrade_seconds", "Algorithm 1 invocations",
        total.upgrade_seconds);
  gauge("skyup_phase_prune_seconds", "sound lower-bound evaluations",
        total.prune_seconds);
  gauge("skyup_phase_merge_seconds", "shard collect/merge/sort",
        total.merge_seconds);
  gauge("skyup_phase_other_seconds", "residual attributed to no phase",
        total.other_seconds);
  gauge("skyup_phase_total_seconds", "sum of all attributed phase time",
        total.TotalSeconds());
  gauge("skyup_query_shards", "worker shards the query actually used",
        static_cast<double>(telemetry.phases.per_shard.size()));
  registry
      ->AddHistogram("skyup_probe_latency_seconds",
                     "per-candidate dominator-skyline probe latency")
      ->MergeFrom(telemetry.probe_latency);
  registry
      ->AddHistogram("skyup_upgrade_latency_seconds",
                     "per-candidate Algorithm 1 latency")
      ->MergeFrom(telemetry.upgrade_latency);
}

void WriteProfile(const QueryTelemetry& telemetry, double wall_seconds,
                  std::ostream& out) {
  const PhaseTimings& total = telemetry.phases.total;
  const double attributed = total.TotalSeconds();
  const auto share = [attributed](double seconds) {
    return attributed > 0.0 ? 100.0 * seconds / attributed : 0.0;
  };
  const struct {
    const char* name;
    double PhaseTimings::* field;
  } kPhases[] = {
      {"probe", &PhaseTimings::probe_seconds},
      {"skyline", &PhaseTimings::skyline_seconds},
      {"upgrade", &PhaseTimings::upgrade_seconds},
      {"prune", &PhaseTimings::prune_seconds},
      {"merge", &PhaseTimings::merge_seconds},
      {"other", &PhaseTimings::other_seconds},
  };

  out << "phase profile (" << telemetry.phases.per_shard.size()
      << " shard" << (telemetry.phases.per_shard.size() == 1 ? "" : "s")
      << ")\n";
  char line[160];
  for (const auto& phase : kPhases) {
    std::snprintf(line, sizeof(line), "  %-8s %12.6f s  %5.1f%%\n",
                  phase.name, total.*(phase.field),
                  share(total.*(phase.field)));
    out << line;
  }
  std::snprintf(line, sizeof(line), "  %-8s %12.6f s\n", "total", attributed);
  out << line;
  if (wall_seconds > 0.0) {
    std::snprintf(line, sizeof(line),
                  "  wall     %12.6f s  (%.1f%% attributed)\n", wall_seconds,
                  100.0 * attributed / wall_seconds);
    out << line;
  }

  if (telemetry.phases.per_shard.size() > 1) {
    out << "per-shard seconds (probe/skyline/upgrade/prune/merge/other)\n";
    for (size_t i = 0; i < telemetry.phases.per_shard.size(); ++i) {
      const PhaseTimings& shard = telemetry.phases.per_shard[i];
      std::snprintf(line, sizeof(line),
                    "  shard %-3zu %.6f/%.6f/%.6f/%.6f/%.6f/%.6f\n", i,
                    shard.probe_seconds, shard.skyline_seconds,
                    shard.upgrade_seconds, shard.prune_seconds,
                    shard.merge_seconds, shard.other_seconds);
      out << line;
    }
  }

  const auto histogram_line = [&](const char* name, const Histogram& h) {
    std::snprintf(line, sizeof(line),
                  "  %-8s n=%llu  p50=%.3gs  p95=%.3gs  p99=%.3gs\n", name,
                  static_cast<unsigned long long>(h.count()),
                  h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99));
    out << line;
  };
  out << "latency histograms\n";
  histogram_line("probe", telemetry.probe_latency);
  histogram_line("upgrade", telemetry.upgrade_latency);
}

}  // namespace skyup
