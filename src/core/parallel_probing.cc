#include "core/parallel_probing.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/dominance.h"
#include "core/lower_bounds.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "obs/trace.h"
#include "rtree/mbr.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"
#include "util/mutex.h"
#include "util/parallel.h"

namespace skyup {

namespace {

struct ShardState {
  explicit ShardState(size_t k) : collector(k) {}
  TopKCollector collector;
  ExecStats stats;
  // Allocated inside the worker (not here) so the phase clock's first lap
  // starts when the shard starts, not when the engine sets up.
  std::unique_ptr<ShardTelemetry> telemetry;
};

// The shared engine behind every parallel entry point.
//
// `lower_bound(t, &stats, tel)` returns a sound lower bound on the
// candidate's upgrade cost (0 disables pruning for that candidate);
// `evaluate(tid, t, &stats, tel)` computes the exact outcome and must bump
// `upgrade_calls` exactly once, so `upgrade_calls + candidates_pruned ==
// products_processed` holds for the aggregate. `tel` is the shard's
// telemetry context (null when the caller asked for none); callbacks lap
// it after each phase they own.
//
// Exactness of the pruning: the shared threshold tau is the minimum over
// shards of each shard's local k-th-best cost, hence tau never drops below
// the final global k-th-best cost c*. A candidate is skipped only when
// bound > tau >= c*, and a sound bound never exceeds the true cost, so the
// true cost is strictly greater than c* and the candidate cannot place —
// even under ties, which sit at equality and are never pruned.
template <typename LowerBoundFn, typename EvaluateFn>
Result<std::vector<UpgradeResult>> RunShardedTopK(
    const Dataset& products, size_t k, size_t threads,
    const LowerBoundFn& lower_bound, const EvaluateFn& evaluate,
    ExecStats* stats, QueryTelemetry* telemetry,
    const QueryControl* control) {
  threads = ResolveThreadCount(threads, products.size());
  std::vector<ShardState> shards;
  shards.reserve(threads);
  for (size_t s = 0; s < threads; ++s) shards.emplace_back(k);
  AtomicCostThreshold threshold;

  // Cancellation/deadline plumbing: the first shard whose `Check()` fires
  // records the reason (under the mutex) and raises `stop`; every other
  // shard sees the relaxed flag at its next candidate and unwinds. The
  // ParallelFor join orders all of this before the status is read below.
  std::atomic<bool> stop{false};
  // lint: guarded-by-ok (function-local: GUARDED_BY only applies to
  // members/globals; the ParallelFor join orders the final unlocked read)
  Mutex stop_mu;
  Status stop_status;

  ParallelFor(
      products.size(), threads,
      [&](size_t shard, size_t begin, size_t end) {
        SKYUP_DCHECK(shard < shards.size());
        SKYUP_DCHECK(begin <= end && end <= products.size());
        SKYUP_TRACE_SPAN("topk/shard");
        // Shard 0 runs on the calling thread (util/parallel.h) — leave
        // that track's name alone; spawned workers get a shard track.
        if (shard != 0 && TraceEnabled()) {
          SetTraceThreadName("shard " + std::to_string(shard));
        }
        ShardState& state = shards[shard];
        if (telemetry != nullptr) {
          state.telemetry = std::make_unique<ShardTelemetry>();
        }
        ShardTelemetry* tel = state.telemetry.get();
        for (size_t i = begin; i < end; ++i) {
          // Poll before the candidate is counted as processed so the
          // accounting identity below holds on early unwind too.
          if (control != nullptr) {
            // lint: relaxed-ok (the reason travels under stop_mu, not the
            // flag; a late observation costs at most one extra candidate)
            if (stop.load(std::memory_order_relaxed)) break;
            if ((i - begin) % QueryControl::kPollStride == 0) {
              Status st = control->Check();
              if (!st.ok()) {
                MutexLock lock(stop_mu);
                if (stop_status.ok()) stop_status = std::move(st);
                // lint: relaxed-ok (see the load above)
                stop.store(true, std::memory_order_relaxed);
                break;
              }
            }
          }
          const PointId tid = static_cast<PointId>(i);
          const double* t = products.data(tid);
          ++state.stats.products_processed;

          // Cheap sound bound first: if even the bound cannot beat the
          // shared k-th-best threshold, skip the skyline + Algorithm 1
          // work entirely.
          const double bound = lower_bound(t, &state.stats, tel);
          LapPrune(tel);
          if (bound > threshold.Get()) {
            ++state.stats.candidates_pruned;
            continue;
          }

          UpgradeOutcome outcome = evaluate(tid, t, &state.stats, tel);

          // Admission before building the result payload: both the shared
          // threshold and the shard's own k-th best must admit the cost.
          // Equal costs pass through — the (cost, id) tie-break decides.
          if (outcome.cost > threshold.Get() ||
              !state.collector.Admits(outcome.cost)) {
            continue;
          }
          state.collector.Add(UpgradeResult{tid, outcome.cost,
                                            std::move(outcome.upgraded),
                                            outcome.already_competitive});
          if (threshold.RelaxTo(state.collector.KthCost())) {
            ++state.stats.threshold_updates;
          }
        }
        LapOther(tel);
      });

  // A fired control token invalidates the whole query: partial shard
  // output is never merged, only the stop reason escapes. (The join above
  // already synchronized every shard's writes.)
  if (!stop_status.ok()) {
    if (stats != nullptr) {
      ExecStats total;
      for (const ShardState& shard : shards) total.MergeFrom(shard.stats);
      SKYUP_DCHECK(total.upgrade_calls + total.candidates_pruned ==
                   total.products_processed);
      *stats = total;
    }
    return stop_status;
  }

  // Engine-side merge: the only phase that runs outside the shards, so it
  // is clocked separately and folded into the query roll-up (per-shard
  // entries stay pure worker time).
  PhaseTimings merge_timings;
  std::vector<UpgradeResult> merged;
  ExecStats total;
  {
    SKYUP_TRACE_SPAN("topk/merge");
    PhaseClock merge_clock(telemetry != nullptr ? &merge_timings : nullptr);
    for (ShardState& shard : shards) {
      std::vector<UpgradeResult> local = shard.collector.Finish();
      for (UpgradeResult& r : local) merged.push_back(std::move(r));
      total.MergeFrom(shard.stats);
    }
    std::sort(merged.begin(), merged.end(), UpgradeResultBefore);
    if (merged.size() > k) merged.resize(k);
    merge_clock.Lap(&PhaseTimings::merge_seconds);
  }
  if (telemetry != nullptr) {
    for (const ShardState& shard : shards) {
      // A shard stays telemetry-less only if ParallelFor never ran its
      // body (empty input).
      if (shard.telemetry != nullptr) shard.telemetry->FlushInto(telemetry);
    }
    telemetry->phases.total.merge_seconds += merge_timings.merge_seconds;
  }
  // The accounting identity documented above, now over the aggregate.
  SKYUP_DCHECK(total.upgrade_calls + total.candidates_pruned ==
               total.products_processed);
  if (stats != nullptr) *stats = total;
  return merged;
}

// Sound lower bound on upgrading `t` against every competitor inside the
// tight box [lo, hi]: `LbcPair` in sound mode charges only escapes from
// dominators the box is guaranteed to contain, so it never exceeds the
// true Algorithm 1 cost (derivation in core/lower_bounds.cc).
double TightBoxBound(const double* lo, const double* hi, const double* t,
                     size_t dims, const ProductCostFunction& cost_fn,
                     ExecStats* stats) {
  ++stats->lbc_evaluations;
  return LbcPair(t, lo, hi, dims, cost_fn, BoundMode::kSound);
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKImprovedProbingParallel(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    size_t threads, ExecStats* stats, QueryTelemetry* telemetry,
    const QueryControl* control) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_tree.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  // Once per query, before the shards fan out: every per-candidate prune
  // below leans on a sound index and a monotone cost function.
  SKYUP_PARANOID_OK(competitors_tree.Validate());
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/improved-probing-parallel");
  const Dataset& competitors = competitors_tree.dataset();
  const size_t dims = products.dims();
  const RTreeNode* root = competitors_tree.root();
  const bool have_box = root != nullptr && !root->mbr.IsEmpty();

  auto bound = [&, have_box](const double* t, ExecStats* st,
                             ShardTelemetry* /*tel*/) {
    if (!have_box) return 0.0;
    return TightBoxBound(root->mbr.min_data(), root->mbr.max_data(), t, dims,
                         cost_fn, st);
  };
  auto evaluate = [&](PointId /*tid*/, const double* t, ExecStats* st,
                      ShardTelemetry* tel) {
    ProbeStats probe;
    std::vector<PointId> sky_ids =
        DominatingSkyline(competitors_tree, t, &probe);
    st->heap_pops += probe.heap_pops;
    st->nodes_visited += probe.nodes_visited;
    st->points_scanned += probe.points_scanned;
    st->block_kernel_calls += probe.block_kernel_calls;
    st->dominators_fetched += sky_ids.size();
    st->skyline_points_total += sky_ids.size();
    LapProbe(tel);

    std::vector<const double*> skyline;
    skyline.reserve(sky_ids.size());
    for (PointId id : sky_ids) skyline.push_back(competitors.data(id));

    ++st->upgrade_calls;
    UpgradeOutcome outcome = UpgradeProduct(skyline, t, dims, cost_fn,
                                            epsilon);
    LapUpgrade(tel);
    return outcome;
  };
  return RunShardedTopK(products, k, threads, bound, evaluate, stats,
                        telemetry, control);
}

Result<std::vector<UpgradeResult>> TopKImprovedProbingParallel(
    const FlatRTree& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    size_t threads, ExecStats* stats, QueryTelemetry* telemetry,
    const QueryControl* control) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_index.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  SKYUP_PARANOID_OK(competitors_index.Validate());
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/improved-probing-parallel-flat");
  const Dataset& competitors = competitors_index.dataset();
  const size_t dims = products.dims();
  const Mbr root_mbr = competitors_index.root_mbr();
  const bool have_box = !root_mbr.IsEmpty();

  auto bound = [&, have_box](const double* t, ExecStats* st,
                             ShardTelemetry* /*tel*/) {
    if (!have_box) return 0.0;
    return TightBoxBound(root_mbr.min_data(), root_mbr.max_data(), t, dims,
                         cost_fn, st);
  };
  auto evaluate = [&](PointId /*tid*/, const double* t, ExecStats* st,
                      ShardTelemetry* tel) {
    ProbeStats probe;
    std::vector<PointId> sky_ids =
        DominatingSkyline(competitors_index, t, &probe);
    st->heap_pops += probe.heap_pops;
    st->nodes_visited += probe.nodes_visited;
    st->points_scanned += probe.points_scanned;
    st->block_kernel_calls += probe.block_kernel_calls;
    st->dominators_fetched += sky_ids.size();
    st->skyline_points_total += sky_ids.size();
    LapProbe(tel);

    std::vector<const double*> skyline;
    skyline.reserve(sky_ids.size());
    for (PointId id : sky_ids) skyline.push_back(competitors.data(id));

    ++st->upgrade_calls;
    UpgradeOutcome outcome = UpgradeProduct(skyline, t, dims, cost_fn,
                                            epsilon);
    LapUpgrade(tel);
    return outcome;
  };
  return RunShardedTopK(products, k, threads, bound, evaluate, stats,
                        telemetry, control);
}

Result<std::vector<UpgradeResult>> TopKBasicProbingParallel(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    size_t threads, ExecStats* stats, QueryTelemetry* telemetry,
    const QueryControl* control) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_tree.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  SKYUP_PARANOID_OK(competitors_tree.Validate());
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/basic-probing-parallel");
  const Dataset& competitors = competitors_tree.dataset();
  const size_t dims = products.dims();
  const RTreeNode* root = competitors_tree.root();
  const bool have_box = root != nullptr && !root->mbr.IsEmpty();

  auto bound = [&, have_box](const double* t, ExecStats* st,
                             ShardTelemetry* /*tel*/) {
    if (!have_box) return 0.0;
    return TightBoxBound(root->mbr.min_data(), root->mbr.max_data(), t, dims,
                         cost_fn, st);
  };
  auto evaluate = [&](PointId /*tid*/, const double* t, ExecStats* st,
                      ShardTelemetry* tel) {
    // Range query over the anti-dominant region ADR(t) = (-inf, t].
    std::vector<double> lo(dims, -std::numeric_limits<double>::infinity());
    const Mbr adr = Mbr::FromCorners(lo.data(), t, dims);
    std::vector<PointId> dominator_ids;
    competitors_tree.RangeQuery(adr, &dominator_ids);

    std::vector<const double*> dominators;
    dominators.reserve(dominator_ids.size());
    for (PointId id : dominator_ids) {
      const double* q = competitors.data(id);
      // The ADR box also contains points equal to t on all dimensions;
      // those do not dominate it.
      if (Dominates(q, t, dims)) dominators.push_back(q);
    }
    st->dominators_fetched += dominators.size();
    LapProbe(tel);

    SkylineOfPointers(&dominators, dims);
    st->skyline_points_total += dominators.size();
    LapSkyline(tel);

    ++st->upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    LapUpgrade(tel);
    return outcome;
  };
  return RunShardedTopK(products, k, threads, bound, evaluate, stats,
                        telemetry, control);
}

Result<std::vector<UpgradeResult>> TopKBruteForceParallel(
    const Dataset& competitors, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    size_t threads, ExecStats* stats, QueryTelemetry* telemetry,
    const QueryControl* control) {
  SKYUP_RETURN_IF_ERROR(
      ValidateTopKArgs(competitors.dims(), products, cost_fn, k, epsilon));
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/brute-force-parallel");
  const size_t dims = products.dims();
  // MinCorner/MaxCorner span a tight box over P — the same guarantee an
  // R-tree root MBR gives, so the sound pruning bound applies unchanged.
  const std::vector<double> lo = competitors.MinCorner();
  const std::vector<double> hi = competitors.MaxCorner();
  const bool have_box = !competitors.empty();

  auto bound = [&, have_box](const double* t, ExecStats* st,
                             ShardTelemetry* /*tel*/) {
    if (!have_box) return 0.0;
    return TightBoxBound(lo.data(), hi.data(), t, dims, cost_fn, st);
  };
  auto evaluate = [&](PointId /*tid*/, const double* t, ExecStats* st,
                      ShardTelemetry* tel) {
    std::vector<const double*> dominators;
    for (size_t j = 0; j < competitors.size(); ++j) {
      const double* q = competitors.data(static_cast<PointId>(j));
      if (Dominates(q, t, dims)) dominators.push_back(q);
    }
    st->dominators_fetched += dominators.size();
    LapProbe(tel);

    SkylineOfPointers(&dominators, dims);
    st->skyline_points_total += dominators.size();
    LapSkyline(tel);

    ++st->upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    LapUpgrade(tel);
    return outcome;
  };
  return RunShardedTopK(products, k, threads, bound, evaluate, stats,
                        telemetry, control);
}

}  // namespace skyup
