#include "core/parallel_probing.h"

#include <algorithm>
#include <thread>

#include "core/probing.h"
#include "core/single_upgrade.h"
#include "skyline/dominating_skyline.h"
#include "util/logging.h"

namespace skyup {

namespace {

struct ShardOutput {
  std::vector<UpgradeResult> top;
  ExecStats stats;
};

// Probes products [begin, end) and keeps the shard's k cheapest.
void ProbeShard(const RTree& tree, const Dataset& products,
                const ProductCostFunction& cost_fn, size_t k, double epsilon,
                size_t begin, size_t end, ShardOutput* out) {
  const Dataset& competitors = tree.dataset();
  const size_t dims = products.dims();
  std::vector<const double*> skyline;
  for (size_t i = begin; i < end; ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++out->stats.products_processed;

    ProbeStats probe;
    std::vector<PointId> sky_ids = DominatingSkyline(tree, t, &probe);
    out->stats.heap_pops += probe.heap_pops;
    out->stats.dominators_fetched += sky_ids.size();
    out->stats.skyline_points_total += sky_ids.size();

    skyline.clear();
    for (PointId id : sky_ids) skyline.push_back(competitors.data(id));

    ++out->stats.upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(skyline, t, dims, cost_fn, epsilon);

    out->top.push_back(UpgradeResult{tid, outcome.cost,
                                     std::move(outcome.upgraded),
                                     outcome.already_competitive});
    // Keep the shard buffer bounded at ~2k entries.
    if (out->top.size() >= 2 * k + 16) {
      std::nth_element(out->top.begin(),
                       out->top.begin() + static_cast<ptrdiff_t>(k - 1),
                       out->top.end(),
                       [](const UpgradeResult& a, const UpgradeResult& b) {
                         if (a.cost != b.cost) return a.cost < b.cost;
                         return a.product_id < b.product_id;
                       });
      out->top.resize(k);
    }
  }
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKImprovedProbingParallel(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    size_t threads, ExecStats* stats) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (products.empty()) {
    return Status::InvalidArgument("product set T is empty");
  }
  if (products.dims() != competitors_tree.dataset().dims() ||
      cost_fn.dims() != products.dims()) {
    return Status::InvalidArgument("dimensionality mismatch");
  }

  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, products.size());

  std::vector<ShardOutput> outputs(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t per_shard = (products.size() + threads - 1) / threads;
  for (size_t s = 0; s < threads; ++s) {
    const size_t begin = s * per_shard;
    const size_t end = std::min(products.size(), begin + per_shard);
    if (begin >= end) break;
    workers.emplace_back([&, begin, end, s] {
      ProbeShard(competitors_tree, products, cost_fn, k, epsilon, begin, end,
                 &outputs[s]);
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<UpgradeResult> merged;
  ExecStats total;
  for (ShardOutput& out : outputs) {
    for (UpgradeResult& r : out.top) merged.push_back(std::move(r));
    total.products_processed += out.stats.products_processed;
    total.dominators_fetched += out.stats.dominators_fetched;
    total.skyline_points_total += out.stats.skyline_points_total;
    total.upgrade_calls += out.stats.upgrade_calls;
    total.heap_pops += out.stats.heap_pops;
  }
  std::sort(merged.begin(), merged.end(),
            [](const UpgradeResult& a, const UpgradeResult& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.product_id < b.product_id;
            });
  if (merged.size() > k) merged.resize(k);
  if (stats != nullptr) *stats = total;
  return merged;
}

}  // namespace skyup
