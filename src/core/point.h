#ifndef SKYUP_CORE_POINT_H_
#define SKYUP_CORE_POINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace skyup {

/// Identifier of a point within a `Dataset` (its row index).
using PointId = int64_t;

/// Sentinel for "no point".
inline constexpr PointId kInvalidPointId = -1;

/// An owning product: an identifier plus its attribute vector.
///
/// The library convention is that *smaller attribute values are better* on
/// every dimension (the paper's simplification); maximize-preferred inputs
/// are flipped by `data/normalize.h` before entering the algorithms.
struct Point {
  PointId id = kInvalidPointId;
  std::vector<double> coords;

  size_t dims() const { return coords.size(); }
};

/// Non-owning view of a point's coordinates.
class PointView {
 public:
  PointView() = default;
  PointView(const double* data, size_t dims) : data_(data), dims_(dims) {}

  const double* data() const { return data_; }
  size_t dims() const { return dims_; }
  double operator[](size_t i) const { return data_[i]; }

  const double* begin() const { return data_; }
  const double* end() const { return data_ + dims_; }

 private:
  const double* data_ = nullptr;
  size_t dims_ = 0;
};

/// Renders a coordinate vector as "(a, b, c)" for diagnostics.
std::string PointToString(const double* p, size_t dims);
std::string PointToString(const std::vector<double>& p);

}  // namespace skyup

#endif  // SKYUP_CORE_POINT_H_
