#ifndef SKYUP_CORE_SINGLE_UPGRADE_H_
#define SKYUP_CORE_SINGLE_UPGRADE_H_

#include <vector>

#include "core/cost_function.h"
#include "core/point.h"

namespace skyup {

/// Result of upgrading one product (Algorithm 1).
struct UpgradeOutcome {
  /// `f_p(upgraded) - f_p(original)` — Definition 7's upgrading cost.
  double cost = 0.0;
  /// The upgraded attribute vector `t'`; equals the original when the
  /// product is already competitive.
  std::vector<double> upgraded;
  /// True iff the dominator skyline was empty (nothing to beat).
  bool already_competitive = false;
};

/// Algorithm 1 of the paper: the cheapest upgrade of product `p` with
/// respect to the skyline `skyline` of `p`'s dominators.
///
/// Preconditions (checked in debug builds):
///  * every member of `skyline` strictly dominates `p`;
///  * members are mutually non-dominating and pairwise distinct.
///
/// Two upgrade families are explored and the cheapest candidate is
/// returned:
///  1. single-dimension: beat *all* skyline points on one dimension `k`
///     by taking the minimum `d_k` among them minus `epsilon`;
///  2. multi-dimension: for every dimension `k` and every pair of points
///     `s_i, s_j` consecutive in the `k`-ordering, beat `s_j` on `k` and
///     `s_i` on all other dimensions (each minus `epsilon`).
///
/// The returned vector is guaranteed not dominated by any skyline member
/// (Lemma 1), hence by no point of the competitor set the skyline was
/// derived from. An empty `skyline` yields cost 0 and `p` unchanged.
///
/// `epsilon` must be positive; it is the paper's ε, the minimal attribute
/// improvement that makes "strictly better" hold.
UpgradeOutcome UpgradeProduct(std::vector<const double*> skyline,
                              const double* p, size_t dims,
                              const ProductCostFunction& cost_fn,
                              double epsilon);

}  // namespace skyup

#endif  // SKYUP_CORE_SINGLE_UPGRADE_H_
