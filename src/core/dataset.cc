#include "core/dataset.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace skyup {

Dataset::Dataset(size_t dims) : dims_(dims) {
  SKYUP_CHECK(dims >= 1) << "dataset dimensionality must be >= 1";
}

Result<Dataset> Dataset::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("FromRows requires at least one row");
  }
  const size_t dims = rows[0].size();
  if (dims == 0) {
    return Status::InvalidArgument("rows must have at least one attribute");
  }
  Dataset ds(dims);
  ds.Reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != dims) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " has arity " +
          std::to_string(rows[i].size()) + ", expected " +
          std::to_string(dims));
    }
    ds.Add(rows[i]);
  }
  return ds;
}

PointId Dataset::Add(const std::vector<double>& coords) {
  SKYUP_CHECK(coords.size() == dims_)
      << "expected " << dims_ << " coords, got " << coords.size();
  return Add(coords.data());
}

PointId Dataset::Add(const double* coords) {
  const PointId id = static_cast<PointId>(size());
  // `coords` may point into this dataset's own storage (the delta overlay
  // copies rows between live tables: `dst.Add(src.data(i))` with
  // dst == src). `insert` would read `coords` after a reallocation moved
  // it, so re-derive the source by offset after growing: the appended
  // region never overlaps an existing row.
  const double* base = storage_.data();
  const std::less<const double*> before;  // total order even across objects
  if (base != nullptr && !before(coords, base) &&
      before(coords, base + storage_.size())) {
    const size_t offset = static_cast<size_t>(coords - base);
    storage_.resize(storage_.size() + dims_);
    std::copy_n(storage_.data() + offset, dims_,
                storage_.data() + static_cast<size_t>(id) * dims_);
    return id;
  }
  storage_.insert(storage_.end(), coords, coords + dims_);
  return id;
}

void Dataset::Reserve(size_t n) { storage_.reserve(n * dims_); }

Point Dataset::Materialize(PointId id) const {
  Point p;
  p.id = id;
  p.coords.assign(data(id), data(id) + dims_);
  return p;
}

std::vector<double> Dataset::MinCorner() const {
  SKYUP_CHECK(!empty());
  std::vector<double> corner(data(0), data(0) + dims_);
  for (size_t i = 1; i < size(); ++i) {
    const double* p = data(static_cast<PointId>(i));
    for (size_t k = 0; k < dims_; ++k) corner[k] = std::min(corner[k], p[k]);
  }
  return corner;
}

std::vector<double> Dataset::MaxCorner() const {
  SKYUP_CHECK(!empty());
  std::vector<double> corner(data(0), data(0) + dims_);
  for (size_t i = 1; i < size(); ++i) {
    const double* p = data(static_cast<PointId>(i));
    for (size_t k = 0; k < dims_; ++k) corner[k] = std::max(corner[k], p[k]);
  }
  return corner;
}

}  // namespace skyup
