#ifndef SKYUP_CORE_PROBING_H_
#define SKYUP_CORE_PROBING_H_

#include <vector>

#include "core/cost_function.h"
#include "core/dataset.h"
#include "core/upgrade_result.h"
#include "obs/phase_timings.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

// Every entry point below optionally reports `ExecStats` work counters
// and, when `telemetry` is non-null, a per-phase wall-time breakdown plus
// per-candidate probe/upgrade latency histograms (obs/phase_timings.h).
// Null telemetry costs one pointer test per phase boundary.

/// Basic probing (Algorithm 2, generalized to top-k): for every candidate
/// in `products`, fetch *all* of its dominators from `competitors_tree`
/// with an ADR range query, reduce them to their skyline, and apply
/// Algorithm 1. Returns the k cheapest upgrades sorted by (cost, id).
///
/// `competitors_tree` must index a dataset of the same dimensionality as
/// `products`; `k` must be >= 1 (fewer than k results are returned only if
/// |products| < k).
Result<std::vector<UpgradeResult>> TopKBasicProbing(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    ExecStats* stats = nullptr, QueryTelemetry* telemetry = nullptr);

/// Improved probing: Algorithm 2 with lines 3-4 replaced by
/// `getDominatingSky` (Algorithm 3), which computes the dominator skyline
/// directly on the R-tree instead of materializing all dominators.
Result<std::vector<UpgradeResult>> TopKImprovedProbing(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    ExecStats* stats = nullptr, QueryTelemetry* telemetry = nullptr);

/// Improved probing over the flat arena snapshot (rtree/flat_rtree.h):
/// same contract and bit-identical results as the pointer-tree overload,
/// but every `getDominatingSky` probe runs the arena traversal with the
/// batched SoA dominance kernels. `ExecStats::block_kernel_calls` counts
/// the kernel invocations. This is the planner's default hot path
/// (`PlannerOptions::use_flat_index`).
Result<std::vector<UpgradeResult>> TopKImprovedProbing(
    const FlatRTree& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    ExecStats* stats = nullptr, QueryTelemetry* telemetry = nullptr);

/// Improved probing with *tiled* probes: candidates are grouped into tiles
/// of up to `kMaxDominanceTile` and each tile's dominator skylines are
/// computed by ONE shared best-first traversal
/// (`DominatingSkylineTileInto`) — node fetches are amortized across the
/// tile and each fetched block is tested against all tile members with one
/// `TileDominanceMasks` sweep. Results equal the sequential flat overload's
/// (the per-member probe yields the same dominator *value set*, which
/// `UpgradeProduct` maps to the same upgrade). Probe counters
/// (`heap_pops`, `nodes_visited`, ...) count shared traversal work once
/// per tile, so they are not comparable to the per-candidate engines'.
Result<std::vector<UpgradeResult>> TopKImprovedProbingTiled(
    const FlatRTree& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    ExecStats* stats = nullptr, QueryTelemetry* telemetry = nullptr);

/// Index-free oracle: scans `competitors` linearly per candidate. Used as
/// the ground truth in tests and as the "no substrate" baseline in
/// ablations; O(|T| * |P| * d).
Result<std::vector<UpgradeResult>> TopKBruteForce(
    const Dataset& competitors, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    ExecStats* stats = nullptr, QueryTelemetry* telemetry = nullptr);

}  // namespace skyup

#endif  // SKYUP_CORE_PROBING_H_
