#ifndef SKYUP_CORE_QUERY_CONTROL_H_
#define SKYUP_CORE_QUERY_CONTROL_H_

// Cooperative cancellation + deadline token for long-running queries.
//
// The serving layer (src/serve/) hands one `QueryControl` per query to the
// engine; the sharded top-k loop polls `Check()` every `kPollStride`
// candidates at shard boundaries and unwinds with `kCancelled` /
// `kDeadlineExceeded` when it fires. The token is write-once-ish by
// design: the deadline is set before the query is submitted (workers only
// read it), while `Cancel()` may race with the query from any thread.

#include <atomic>
#include <cstddef>

#include "util/status.h"
#include "util/timer.h"

namespace skyup {

class QueryControl {
 public:
  /// How many candidates a shard processes between `Check()` polls. Small
  /// enough that a deadline fires within a handful of upgrade evaluations,
  /// large enough that the steady-clock read never shows up in a profile.
  static constexpr size_t kPollStride = 32;

  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Requests cancellation. Safe to call from any thread, any time.
  /// lint: relaxed-ok (a lone flag carries no payload; workers poll it)
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Sets an absolute deadline. Must be called before the query starts
  /// (workers read the deadline without further synchronization beyond
  /// the release/acquire pair on `has_deadline_`).
  void SetDeadline(SteadyClock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Convenience: deadline = now + `seconds`.
  void SetTimeout(double seconds) {
    SetDeadline(SteadyClock::now() +
                std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(seconds)));
  }

  /// Stamps the admission-assigned query id. Like the deadline, this is
  /// set before the query is handed to a worker (the queue mutex
  /// publishes it), so workers read it without further synchronization.
  /// 0 means "never admitted" (e.g. engine-level tests).
  void set_query_id(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }

  bool cancelled() const {
    // lint: relaxed-ok (poll of the lone flag; a late observation only
    // delays the unwind by at most one poll stride)
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// OK while the query may keep running; `kCancelled` or
  /// `kDeadlineExceeded` once it must stop. Cancellation wins ties so a
  /// cancelled query reports as cancelled even when its deadline has also
  /// lapsed.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (has_deadline_.load(std::memory_order_acquire) &&
        SteadyClock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  SteadyClock::time_point deadline_{};
  uint64_t query_id_ = 0;
};

}  // namespace skyup

#endif  // SKYUP_CORE_QUERY_CONTROL_H_
