#include "core/planner.h"

#include <algorithm>

#include "core/parallel_probing.h"
#include "core/single_upgrade.h"
#include "obs/trace.h"
#include "skyline/dominating_skyline.h"
#include "util/logging.h"
#include "util/timer.h"

namespace skyup {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBruteForce:
      return "brute-force";
    case Algorithm::kBasicProbing:
      return "basic-probing";
    case Algorithm::kImprovedProbing:
      return "improved-probing";
    case Algorithm::kJoin:
      return "join";
  }
  return "?";
}

UpgradePlanner::UpgradePlanner(std::unique_ptr<Dataset> competitors,
                               std::unique_ptr<Dataset> products,
                               std::unique_ptr<ProductCostFunction> cost_fn,
                               PlannerOptions options)
    : competitors_(std::move(competitors)),
      products_(std::move(products)),
      cost_fn_(std::move(cost_fn)),
      options_(options) {}

Result<UpgradePlanner> UpgradePlanner::Create(Dataset competitors,
                                              Dataset products,
                                              ProductCostFunction cost_fn,
                                              PlannerOptions options) {
  if (competitors.empty()) {
    return Status::InvalidArgument("competitor set P is empty");
  }
  if (products.empty()) {
    return Status::InvalidArgument("product set T is empty");
  }
  if (competitors.dims() != products.dims()) {
    return Status::InvalidArgument(
        "P has " + std::to_string(competitors.dims()) + " dimensions, T has " +
        std::to_string(products.dims()));
  }
  if (cost_fn.dims() != competitors.dims()) {
    return Status::InvalidArgument(
        "cost function covers " + std::to_string(cost_fn.dims()) +
        " dimensions, data has " + std::to_string(competitors.dims()));
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.rtree_fanout < 2) {
    return Status::InvalidArgument("R-tree fanout must be at least 2");
  }
  if (options.probe_tile && (!options.use_flat_index || options.threads != 1)) {
    return Status::InvalidArgument(
        "probe_tile requires use_flat_index and threads == 1");
  }
  SKYUP_TRACE_SPAN("planner/create");

  if (options.validate_monotonicity) {
    std::vector<double> lo = competitors.MinCorner();
    std::vector<double> hi = products.MaxCorner();
    const std::vector<double> lo2 = products.MinCorner();
    const std::vector<double> hi2 = competitors.MaxCorner();
    for (size_t i = 0; i < lo.size(); ++i) {
      // Upgrades only ever go epsilon below the best competitor value, so
      // that margin is all the check needs to cover (a wider margin would
      // probe cost functions like 1/(x+delta) beyond their valid domain).
      lo[i] = std::min(lo[i], lo2[i]) - 10.0 * options.epsilon;
      hi[i] = std::max(hi[i], hi2[i]);
    }
    double span_lo = lo[0], span_hi = hi[0];
    for (size_t i = 1; i < lo.size(); ++i) {
      span_lo = std::min(span_lo, lo[i]);
      span_hi = std::max(span_hi, hi[i]);
    }
    SKYUP_RETURN_IF_ERROR(cost_fn.CheckMonotonicity(span_lo, span_hi));
  }

  UpgradePlanner planner(
      std::make_unique<Dataset>(std::move(competitors)),
      std::make_unique<Dataset>(std::move(products)),
      std::make_unique<ProductCostFunction>(std::move(cost_fn)), options);

  RTree::Options tree_options;
  tree_options.max_entries = options.rtree_fanout;
  {
    SKYUP_TRACE_SPAN("planner/bulk-load");
    Result<RTree> rp = RTree::BulkLoad(*planner.competitors_, tree_options);
    if (!rp.ok()) return rp.status();
    Result<RTree> rt = RTree::BulkLoad(*planner.products_, tree_options);
    if (!rt.ok()) return rt.status();
    planner.rp_ = std::make_unique<RTree>(std::move(rp).value());
    planner.rt_ = std::make_unique<RTree>(std::move(rt).value());
  }
  if (options.use_flat_index) {
    // One BFS pass over the freshly loaded pointer tree; the snapshot
    // shares the planner's competitor dataset, whose address is stable
    // (unique_ptr member).
    SKYUP_TRACE_SPAN("planner/flat-snapshot");
    planner.fp_ =
        std::make_unique<FlatRTree>(FlatRTree::FromTree(*planner.rp_));
  }
  return planner;
}

Result<std::vector<UpgradeResult>> UpgradePlanner::TopK(
    size_t k, Algorithm algorithm, ExecStats* stats,
    QueryTelemetry* telemetry, const QueryControl* control) const {
  const bool parallel = options_.threads != 1;
  // The sequential and join paths have no shard boundaries to poll at, so
  // a fired token is honored once, before any work starts; the parallel
  // engines keep polling mid-flight.
  if (control != nullptr) {
    Status st = control->Check();
    if (!st.ok()) return st;
  }
  switch (algorithm) {
    case Algorithm::kBruteForce:
      if (parallel) {
        return TopKBruteForceParallel(*competitors_, *products_, *cost_fn_,
                                      k, options_.epsilon, options_.threads,
                                      stats, telemetry, control);
      }
      return TopKBruteForce(*competitors_, *products_, *cost_fn_, k,
                            options_.epsilon, stats, telemetry);
    case Algorithm::kBasicProbing:
      if (parallel) {
        return TopKBasicProbingParallel(*rp_, *products_, *cost_fn_, k,
                                        options_.epsilon, options_.threads,
                                        stats, telemetry, control);
      }
      return TopKBasicProbing(*rp_, *products_, *cost_fn_, k,
                              options_.epsilon, stats, telemetry);
    case Algorithm::kImprovedProbing:
      if (fp_ != nullptr) {
        if (parallel) {
          return TopKImprovedProbingParallel(*fp_, *products_, *cost_fn_, k,
                                             options_.epsilon,
                                             options_.threads, stats,
                                             telemetry, control);
        }
        if (options_.probe_tile) {
          return TopKImprovedProbingTiled(*fp_, *products_, *cost_fn_, k,
                                          options_.epsilon, stats, telemetry);
        }
        return TopKImprovedProbing(*fp_, *products_, *cost_fn_, k,
                                   options_.epsilon, stats, telemetry);
      }
      if (parallel) {
        return TopKImprovedProbingParallel(*rp_, *products_, *cost_fn_, k,
                                           options_.epsilon,
                                           options_.threads, stats,
                                           telemetry, control);
      }
      return TopKImprovedProbing(*rp_, *products_, *cost_fn_, k,
                                 options_.epsilon, stats, telemetry);
    case Algorithm::kJoin: {
      JoinOptions join_options;
      join_options.lower_bound = options_.lower_bound;
      join_options.bound_mode = options_.bound_mode;
      join_options.epsilon = options_.epsilon;
      join_options.mutual_dominance_pruning =
          options_.mutual_dominance_pruning;
      join_options.refine_zero_bound_leaves =
          options_.refine_zero_bound_leaves;
      return TopKJoin(*rp_, *rt_, *cost_fn_, k, join_options, stats,
                      telemetry);
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<TopKReport> UpgradePlanner::TopKWithReport(size_t k,
                                                  Algorithm algorithm) const {
  TopKReport report;
  report.algorithm = algorithm;
  report.k = k;
  Timer wall;
  Result<std::vector<UpgradeResult>> results =
      TopK(k, algorithm, &report.stats, &report.telemetry);
  if (!results.ok()) return results.status();
  report.wall_seconds = wall.ElapsedSeconds();
  report.results = std::move(results).value();
  return report;
}

Result<JoinCursor> UpgradePlanner::OpenJoinCursor() const {
  JoinOptions join_options;
  join_options.lower_bound = options_.lower_bound;
  join_options.bound_mode = options_.bound_mode;
  join_options.epsilon = options_.epsilon;
  join_options.mutual_dominance_pruning = options_.mutual_dominance_pruning;
  join_options.refine_zero_bound_leaves = options_.refine_zero_bound_leaves;
  return JoinCursor::Create(rp_.get(), rt_.get(), cost_fn_.get(),
                            join_options);
}

Result<std::vector<UpgradeResult>> UpgradePlanner::TopKWithinSet(
    const Dataset& catalog, const ProductCostFunction& cost_fn, size_t k,
    PlannerOptions options) {
  if (catalog.empty()) {
    return Status::InvalidArgument("catalog is empty");
  }
  if (cost_fn.dims() != catalog.dims()) {
    return Status::InvalidArgument(
        "cost function dimensionality does not match the catalog");
  }
  RTree::Options tree_options;
  tree_options.max_entries = options.rtree_fanout;
  Result<RTree> tree = RTree::BulkLoad(catalog, tree_options);
  if (!tree.ok()) return tree.status();
  // A point never strictly dominates itself (or an identical twin), so
  // improved probing against the catalog's own tree yields exactly the
  // "all other members" semantics.
  if (options.use_flat_index) {
    const FlatRTree flat = FlatRTree::FromTree(tree.value());
    if (options.threads != 1) {
      return TopKImprovedProbingParallel(flat, catalog, cost_fn, k,
                                         options.epsilon, options.threads);
    }
    return TopKImprovedProbing(flat, catalog, cost_fn, k, options.epsilon);
  }
  if (options.threads != 1) {
    return TopKImprovedProbingParallel(tree.value(), catalog, cost_fn, k,
                                       options.epsilon, options.threads);
  }
  return TopKImprovedProbing(tree.value(), catalog, cost_fn, k,
                             options.epsilon);
}

}  // namespace skyup
