#ifndef SKYUP_CORE_DOMINANCE_BATCH_H_
#define SKYUP_CORE_DOMINANCE_BATCH_H_

// Batched dominance kernels: one query point against a *block* of points
// laid out structure-of-arrays (SoA). The skyline survey (Kalyvas &
// Tzouramanis 2017) identifies dominance-test volume as the dominant cost
// of BBS-style algorithms; these kernels turn the inner point-pair loops of
// the probe hot path (window pruning, leaf filtering, child culling) into
// sequential per-dimension sweeps that vectorize.
//
// Every kernel has a plain scalar implementation (the `*Scalar` entry
// points, always compiled — they are the test oracle) and, when the library
// is built with SKYUP_SIMD and the CPU supports it at runtime, an AVX2
// specialization processing four lanes per instruction. Both evaluate the
// exact same IEEE comparisons in the same orientation, so results are
// bit-identical by construction; the equivalence suite
// (tests/dominance_batch_test.cc) verifies it on randomized, tie-heavy, and
// duplicate-laden blocks.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dominance.h"
#include "core/point.h"

namespace skyup {

/// Non-owning view of `count` points in SoA layout: the values of dimension
/// `d` are the contiguous run `data[d * stride] .. data[d * stride + count)`.
/// `stride >= count` (the gap is unused capacity). Both a packed coordinate
/// block and a per-dimension arena column (e.g. an R-tree node range inside
/// `FlatRTree`'s MBR arrays) are expressible as one of these.
struct SoaView {
  const double* data = nullptr;
  size_t stride = 0;
  size_t count = 0;
  size_t dims = 0;

  const double* dim(size_t d) const { return data + d * stride; }
  bool empty() const { return count == 0; }
};

/// Growable owning SoA block; the dominance-window container of the
/// batched traversals. Appending keeps all previously returned lane indices
/// stable (lanes never reorder).
class SoaBlock {
 public:
  explicit SoaBlock(size_t dims) : dims_(dims) {}

  size_t size() const { return count_; }
  size_t dims() const { return dims_; }
  bool empty() const { return count_ == 0; }

  /// Appends one point of `dims()` contiguous coordinates.
  void Append(const double* p);

  /// Drops all points, keeping capacity.
  void Clear() { count_ = 0; }

  SoaView view() const { return SoaView{data_.data(), capacity_, count_, dims_}; }

  /// Value of dimension `d` of lane `i`.
  double at(size_t i, size_t d) const { return data_[d * capacity_ + i]; }

 private:
  void Grow(size_t new_capacity);

  size_t dims_;
  size_t count_ = 0;
  size_t capacity_ = 0;
  std::vector<double> data_;  // dims_ * capacity_, dimension-major
};

/// True iff some lane `s` of `block` satisfies `s[d] <= q[d]` on every
/// dimension — i.e. dominates-or-equals `q`. This is the window-pruning
/// test of BBS/SFS-style traversals (block lanes are the potential
/// dominators, `q` the candidate point or MBR min corner).
bool DominatesAny(const SoaView& block, const double* q);

/// Appends to `out` the (ascending) indices of the lanes that *strictly
/// dominate* `q`: `lane[d] <= q[d]` everywhere and `<` somewhere. With
/// `strict == false` the equality lanes are kept too (dominate-or-equal) —
/// that variant is the ADR overlap filter for MBR min corners. Returns the
/// number of indices appended.
size_t FilterDominated(const SoaView& block, const double* q,
                       std::vector<uint32_t>* out, bool strict = true);

/// Full four-way classification of every lane against `q`, one
/// `Compare(lane, q)` per lane into `out[0..count)`.
void ClassifyBlock(const SoaView& block, const double* q, DomRelation* out);

/// Maximum tile width the multi-query kernels accept: outcome masks are one
/// `uint64_t` per block lane, bit `j` = tile member `j`.
inline constexpr size_t kMaxDominanceTile = 64;

/// Multi-query generalization of `FilterDominated`: tests every lane of
/// `block` against a *tile* of query points in one sweep. On return,
/// `masks[i]` has bit `j` set iff lane `i` dominates `tile[j]` — strictly
/// when `strict` (<= everywhere, < somewhere), dominates-or-equal otherwise
/// (the ADR-overlap orientation for MBR min corners). `masks` must hold
/// `block.count` entries; they are overwritten, not accumulated.
/// `tile_count` must be in [1, kMaxDominanceTile]; every `tile[j]` has
/// `block.dims` coordinates. Per (lane, tile[j]) pair the comparisons are
/// the exact IEEE tests `FilterDominated` evaluates, so for any fixed `j`,
/// `masks[i] >> j & 1` reproduces the single-query filter bit for bit.
void TileDominanceMasks(const SoaView& block, const double* const* tile,
                        size_t tile_count, bool strict, uint64_t* masks);

/// Scalar reference implementations — always built, never dispatched away;
/// the oracle the SIMD paths are tested against.
bool DominatesAnyScalar(const SoaView& block, const double* q);
size_t FilterDominatedScalar(const SoaView& block, const double* q,
                             std::vector<uint32_t>* out, bool strict = true);
void ClassifyBlockScalar(const SoaView& block, const double* q,
                         DomRelation* out);
void TileDominanceMasksScalar(const SoaView& block, const double* const* tile,
                              size_t tile_count, bool strict,
                              uint64_t* masks);

/// Name of the kernel implementation the dispatched entry points resolve to
/// on this process: "avx2" or "scalar". Observability only.
const char* BatchKernelName();

}  // namespace skyup

#endif  // SKYUP_CORE_DOMINANCE_BATCH_H_
