#include "core/probing.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/dominance.h"
#include "core/single_upgrade.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"
#include "util/logging.h"

namespace skyup {

namespace {

// Keeps the k cheapest (cost, id, outcome) candidates seen so far.
class TopKCollector {
 public:
  explicit TopKCollector(size_t k) : k_(k) {}

  // True if a candidate with this cost could still enter the top-k; lets
  // callers skip building result payloads for hopeless candidates.
  bool Admits(double cost) const {
    if (heap_.size() < k_) return true;
    // <= so that equal-cost candidates reach Add, where the id tie-break
    // decides.
    return cost <= heap_.top().result.cost;
  }

  void Add(UpgradeResult result) {
    if (heap_.size() < k_) {
      heap_.push({std::move(result)});
      return;
    }
    const Item& worst = heap_.top();
    if (result.cost < worst.result.cost ||
        (result.cost == worst.result.cost &&
         result.product_id < worst.result.product_id)) {
      heap_.pop();
      heap_.push({std::move(result)});
    }
  }

  std::vector<UpgradeResult> Finish() {
    std::vector<UpgradeResult> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(std::move(const_cast<Item&>(heap_.top()).result));
      heap_.pop();
    }
    std::sort(out.begin(), out.end(),
              [](const UpgradeResult& a, const UpgradeResult& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.product_id < b.product_id;
              });
    return out;
  }

 private:
  struct Item {
    UpgradeResult result;
    // Max-heap on (cost, id): the heap top is the current worst member.
    bool operator<(const Item& other) const {
      if (result.cost != other.result.cost) {
        return result.cost < other.result.cost;
      }
      return result.product_id < other.result.product_id;
    }
  };

  size_t k_;
  std::priority_queue<Item> heap_;
};

Status ValidateTopKArgs(size_t competitor_dims, const Dataset& products,
                        const ProductCostFunction& cost_fn, size_t k,
                        double epsilon) {
  if (k == 0) return Status::InvalidArgument("k must be at least 1");
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (products.dims() != competitor_dims) {
    return Status::InvalidArgument(
        "competitor and product dimensionality differ: " +
        std::to_string(competitor_dims) + " vs " +
        std::to_string(products.dims()));
  }
  if (cost_fn.dims() != products.dims()) {
    return Status::InvalidArgument(
        "cost function dimensionality " + std::to_string(cost_fn.dims()) +
        " does not match data dimensionality " +
        std::to_string(products.dims()));
  }
  if (products.empty()) {
    return Status::InvalidArgument("product set T is empty");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKBasicProbing(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_tree.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const Dataset& competitors = competitors_tree.dataset();
  const size_t dims = products.dims();

  TopKCollector collector(k);
  std::vector<PointId> dominator_ids;
  std::vector<const double*> dominators;
  for (size_t i = 0; i < products.size(); ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++st->products_processed;

    // Range query over the anti-dominant region ADR(t) = (-inf, t].
    std::vector<double> lo(dims, -std::numeric_limits<double>::infinity());
    const Mbr adr = Mbr::FromCorners(lo.data(), t, dims);
    dominator_ids.clear();
    competitors_tree.RangeQuery(adr, &dominator_ids);

    dominators.clear();
    for (PointId id : dominator_ids) {
      const double* q = competitors.data(id);
      // The ADR box also contains points equal to t on all dimensions;
      // those do not dominate it.
      if (Dominates(q, t, dims)) dominators.push_back(q);
    }
    st->dominators_fetched += dominators.size();

    SkylineOfPointers(&dominators, dims);
    st->skyline_points_total += dominators.size();

    ++st->upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    if (!collector.Admits(outcome.cost)) continue;
    collector.Add(UpgradeResult{tid, outcome.cost, std::move(outcome.upgraded),
                                outcome.already_competitive});
  }
  return collector.Finish();
}

Result<std::vector<UpgradeResult>> TopKImprovedProbing(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_tree.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const Dataset& competitors = competitors_tree.dataset();
  const size_t dims = products.dims();

  TopKCollector collector(k);
  std::vector<const double*> skyline;
  for (size_t i = 0; i < products.size(); ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++st->products_processed;

    ProbeStats probe;
    std::vector<PointId> sky_ids = DominatingSkyline(competitors_tree, t,
                                                     &probe);
    st->heap_pops += probe.heap_pops;
    st->dominators_fetched += sky_ids.size();
    st->skyline_points_total += sky_ids.size();

    skyline.clear();
    skyline.reserve(sky_ids.size());
    for (PointId id : sky_ids) skyline.push_back(competitors.data(id));

    ++st->upgrade_calls;
    UpgradeOutcome outcome = UpgradeProduct(skyline, t, dims, cost_fn,
                                            epsilon);
    if (!collector.Admits(outcome.cost)) continue;
    collector.Add(UpgradeResult{tid, outcome.cost, std::move(outcome.upgraded),
                                outcome.already_competitive});
  }
  return collector.Finish();
}

Result<std::vector<UpgradeResult>> TopKBruteForce(
    const Dataset& competitors, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats) {
  SKYUP_RETURN_IF_ERROR(
      ValidateTopKArgs(competitors.dims(), products, cost_fn, k, epsilon));
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const size_t dims = products.dims();

  TopKCollector collector(k);
  std::vector<const double*> dominators;
  for (size_t i = 0; i < products.size(); ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++st->products_processed;

    dominators.clear();
    for (size_t j = 0; j < competitors.size(); ++j) {
      const double* q = competitors.data(static_cast<PointId>(j));
      if (Dominates(q, t, dims)) dominators.push_back(q);
    }
    st->dominators_fetched += dominators.size();

    SkylineOfPointers(&dominators, dims);
    st->skyline_points_total += dominators.size();

    ++st->upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    if (!collector.Admits(outcome.cost)) continue;
    collector.Add(UpgradeResult{tid, outcome.cost, std::move(outcome.upgraded),
                                outcome.already_competitive});
  }
  return collector.Finish();
}

}  // namespace skyup
