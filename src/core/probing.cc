#include "core/probing.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "core/dominance.h"
#include "core/dominance_batch.h"
#include "core/single_upgrade.h"
#include "core/topk_common.h"
#include "obs/trace.h"
#include "skyline/dominating_skyline.h"
#include "skyline/skyline.h"
#include "util/logging.h"

namespace skyup {

namespace {

// Shard telemetry for the sequential engines: one shard, allocated only
// when the caller asked for telemetry (the null path costs one pointer
// test per phase boundary).
std::unique_ptr<ShardTelemetry> MakeShardTelemetry(QueryTelemetry* telemetry) {
  return telemetry != nullptr ? std::make_unique<ShardTelemetry>() : nullptr;
}

void FlushShardTelemetry(const std::unique_ptr<ShardTelemetry>& shard,
                         QueryTelemetry* telemetry) {
  if (shard != nullptr) shard->FlushInto(telemetry);
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKBasicProbing(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats, QueryTelemetry* telemetry) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_tree.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  // Once per query, not per probe: index structure and cost-function
  // monotonicity are what every per-probe prune relies on.
  SKYUP_PARANOID_OK(competitors_tree.Validate());
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/basic-probing");
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const Dataset& competitors = competitors_tree.dataset();
  const size_t dims = products.dims();
  std::unique_ptr<ShardTelemetry> shard = MakeShardTelemetry(telemetry);

  TopKCollector collector(k);
  std::vector<PointId> dominator_ids;
  std::vector<const double*> dominators;
  for (size_t i = 0; i < products.size(); ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++st->products_processed;

    // Range query over the anti-dominant region ADR(t) = (-inf, t].
    std::vector<double> lo(dims, -std::numeric_limits<double>::infinity());
    const Mbr adr = Mbr::FromCorners(lo.data(), t, dims);
    dominator_ids.clear();
    competitors_tree.RangeQuery(adr, &dominator_ids);

    dominators.clear();
    for (PointId id : dominator_ids) {
      const double* q = competitors.data(id);
      // The ADR box also contains points equal to t on all dimensions;
      // those do not dominate it.
      if (Dominates(q, t, dims)) dominators.push_back(q);
    }
    st->dominators_fetched += dominators.size();
    LapProbe(shard.get());

    SkylineOfPointers(&dominators, dims);
    st->skyline_points_total += dominators.size();
    LapSkyline(shard.get());

    ++st->upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    LapUpgrade(shard.get());
    if (!collector.Admits(outcome.cost)) continue;
    collector.Add(UpgradeResult{tid, outcome.cost, std::move(outcome.upgraded),
                                outcome.already_competitive});
  }
  LapOther(shard.get());
  std::vector<UpgradeResult> results = collector.Finish();
  LapMerge(shard.get());
  FlushShardTelemetry(shard, telemetry);
  return results;
}

namespace {

// One implementation for both index forms: `Index` is `RTree` (pointer
// nodes, scalar probe) or `FlatRTree` (arena nodes, batched SoA probe);
// overload resolution on `DominatingSkyline` picks the traversal. Results
// are bit-identical either way — the flat probe pops and accepts in the
// same order as the pointer probe.
template <typename Index>
Result<std::vector<UpgradeResult>> TopKImprovedProbingImpl(
    const Index& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats, QueryTelemetry* telemetry) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_index.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  // Both index forms expose Status Validate(); run it once per query here
  // rather than per probe inside DominatingSkyline.
  SKYUP_PARANOID_OK(competitors_index.Validate());
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/improved-probing");
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const Dataset& competitors = competitors_index.dataset();
  const size_t dims = products.dims();
  std::unique_ptr<ShardTelemetry> shard = MakeShardTelemetry(telemetry);

  TopKCollector collector(k);
  std::vector<const double*> skyline;
  for (size_t i = 0; i < products.size(); ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++st->products_processed;

    ProbeStats probe;
    std::vector<PointId> sky_ids = DominatingSkyline(competitors_index, t,
                                                     &probe);
    st->heap_pops += probe.heap_pops;
    st->nodes_visited += probe.nodes_visited;
    st->points_scanned += probe.points_scanned;
    st->block_kernel_calls += probe.block_kernel_calls;
    st->dominators_fetched += sky_ids.size();
    st->skyline_points_total += sky_ids.size();
    LapProbe(shard.get());

    skyline.clear();
    skyline.reserve(sky_ids.size());
    for (PointId id : sky_ids) skyline.push_back(competitors.data(id));

    ++st->upgrade_calls;
    UpgradeOutcome outcome = UpgradeProduct(skyline, t, dims, cost_fn,
                                            epsilon);
    LapUpgrade(shard.get());
    if (!collector.Admits(outcome.cost)) continue;
    collector.Add(UpgradeResult{tid, outcome.cost, std::move(outcome.upgraded),
                                outcome.already_competitive});
  }
  LapOther(shard.get());
  std::vector<UpgradeResult> results = collector.Finish();
  LapMerge(shard.get());
  FlushShardTelemetry(shard, telemetry);
  return results;
}

}  // namespace

Result<std::vector<UpgradeResult>> TopKImprovedProbing(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats, QueryTelemetry* telemetry) {
  return TopKImprovedProbingImpl(competitors_tree, products, cost_fn, k,
                                 epsilon, stats, telemetry);
}

Result<std::vector<UpgradeResult>> TopKImprovedProbing(
    const FlatRTree& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats, QueryTelemetry* telemetry) {
  return TopKImprovedProbingImpl(competitors_index, products, cost_fn, k,
                                 epsilon, stats, telemetry);
}

Result<std::vector<UpgradeResult>> TopKImprovedProbingTiled(
    const FlatRTree& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats, QueryTelemetry* telemetry) {
  SKYUP_RETURN_IF_ERROR(ValidateTopKArgs(competitors_index.dataset().dims(),
                                         products, cost_fn, k, epsilon));
  SKYUP_PARANOID_OK(competitors_index.Validate());
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/improved-probing-tiled");
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const Dataset& competitors = competitors_index.dataset();
  const size_t dims = products.dims();
  std::unique_ptr<ShardTelemetry> shard = MakeShardTelemetry(telemetry);

  TopKCollector collector(k);
  std::vector<const double*> tile(kMaxDominanceTile);
  std::vector<std::vector<PointId>> tile_skylines(kMaxDominanceTile);
  std::vector<const double*> skyline;
  for (size_t base = 0; base < products.size(); base += kMaxDominanceTile) {
    const size_t tile_count =
        std::min(kMaxDominanceTile, products.size() - base);
    for (size_t j = 0; j < tile_count; ++j) {
      tile[j] = products.data(static_cast<PointId>(base + j));
    }

    ProbeStats probe;
    DominatingSkylineTileInto(competitors_index, tile.data(), tile_count,
                              /*dead_rows=*/nullptr, tile_skylines.data(),
                              &probe);
    st->heap_pops += probe.heap_pops;
    st->nodes_visited += probe.nodes_visited;
    st->points_scanned += probe.points_scanned;
    st->block_kernel_calls += probe.block_kernel_calls;
    LapProbe(shard.get());

    // Members are offered in candidate order, exactly like the sequential
    // engine; the probe's value-set contract makes each outcome equal.
    for (size_t j = 0; j < tile_count; ++j) {
      const PointId tid = static_cast<PointId>(base + j);
      ++st->products_processed;
      st->dominators_fetched += tile_skylines[j].size();
      st->skyline_points_total += tile_skylines[j].size();
      skyline.clear();
      skyline.reserve(tile_skylines[j].size());
      for (PointId id : tile_skylines[j]) skyline.push_back(competitors.data(id));
      ++st->upgrade_calls;
      UpgradeOutcome outcome = UpgradeProduct(skyline, products.data(tid),
                                              dims, cost_fn, epsilon);
      LapUpgrade(shard.get());
      if (!collector.Admits(outcome.cost)) continue;
      collector.Add(UpgradeResult{tid, outcome.cost,
                                  std::move(outcome.upgraded),
                                  outcome.already_competitive});
    }
  }
  LapOther(shard.get());
  std::vector<UpgradeResult> results = collector.Finish();
  LapMerge(shard.get());
  FlushShardTelemetry(shard, telemetry);
  return results;
}

Result<std::vector<UpgradeResult>> TopKBruteForce(
    const Dataset& competitors, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon,
    ExecStats* stats, QueryTelemetry* telemetry) {
  SKYUP_RETURN_IF_ERROR(
      ValidateTopKArgs(competitors.dims(), products, cost_fn, k, epsilon));
  SKYUP_PARANOID_OK(SpotCheckCostMonotonicity(cost_fn, products));
  SKYUP_TRACE_SPAN("topk/brute-force");
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  const size_t dims = products.dims();
  std::unique_ptr<ShardTelemetry> shard = MakeShardTelemetry(telemetry);

  TopKCollector collector(k);
  std::vector<const double*> dominators;
  for (size_t i = 0; i < products.size(); ++i) {
    const PointId tid = static_cast<PointId>(i);
    const double* t = products.data(tid);
    ++st->products_processed;

    dominators.clear();
    for (size_t j = 0; j < competitors.size(); ++j) {
      const double* q = competitors.data(static_cast<PointId>(j));
      if (Dominates(q, t, dims)) dominators.push_back(q);
    }
    st->dominators_fetched += dominators.size();
    LapProbe(shard.get());

    SkylineOfPointers(&dominators, dims);
    st->skyline_points_total += dominators.size();
    LapSkyline(shard.get());

    ++st->upgrade_calls;
    UpgradeOutcome outcome =
        UpgradeProduct(dominators, t, dims, cost_fn, epsilon);
    LapUpgrade(shard.get());
    if (!collector.Admits(outcome.cost)) continue;
    collector.Add(UpgradeResult{tid, outcome.cost, std::move(outcome.upgraded),
                                outcome.already_competitive});
  }
  LapOther(shard.get());
  std::vector<UpgradeResult> results = collector.Finish();
  LapMerge(shard.get());
  FlushShardTelemetry(shard, telemetry);
  return results;
}

}  // namespace skyup
