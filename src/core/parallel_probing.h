#ifndef SKYUP_CORE_PARALLEL_PROBING_H_
#define SKYUP_CORE_PARALLEL_PROBING_H_

// Multi-threaded improved probing (library extension). Probing treats
// every product independently and the R-tree is immutable during queries,
// so the candidate set shards perfectly across threads; each worker keeps
// a private top-k that a final merge reduces. Results are identical to the
// sequential `TopKImprovedProbing`.

#include <vector>

#include "core/cost_function.h"
#include "core/dataset.h"
#include "core/upgrade_result.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

/// Parallel improved probing over `threads` workers (0 = one per hardware
/// thread). Same contract and results as `TopKImprovedProbing`; `stats`
/// aggregates all workers.
Result<std::vector<UpgradeResult>> TopKImprovedProbingParallel(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    size_t threads = 0, ExecStats* stats = nullptr);

}  // namespace skyup

#endif  // SKYUP_CORE_PARALLEL_PROBING_H_
