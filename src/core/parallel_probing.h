#ifndef SKYUP_CORE_PARALLEL_PROBING_H_
#define SKYUP_CORE_PARALLEL_PROBING_H_

// Multi-threaded top-k product upgrading (library extension).
//
// All entry points run on one shared engine (see parallel_probing.cc):
// candidates shard contiguously across workers (util/parallel.h), every
// worker keeps a private `TopKCollector`, and all workers share a single
// atomic cost threshold — the cheapest k-th-best cost any shard has proven
// so far, lowered lock-free with CAS-min. Before paying for a candidate's
// dominator skyline + Algorithm 1, a worker evaluates the *sound-mode*
// `LbcPair` bound against the competitor root MBR and skips the candidate
// outright when the bound already exceeds the shared threshold
// (`ExecStats::candidates_pruned`). Because the bound never exceeds the
// true upgrade cost and the threshold never drops below the final global
// k-th-best cost, pruning is exact: results are bit-identical to the
// sequential algorithms for every thread count. docs/algorithms.md has the
// full soundness argument.
//
// With `telemetry` non-null every worker collects a shard-local
// `ShardTelemetry` (phase timings + latency histograms) that is flushed
// into the query-level breakdown on the merging thread; per-shard entries
// index by worker, and the engine-side merge/sort lands in
// `phases.total.merge_seconds` (obs/phase_timings.h).

#include <vector>

#include "core/cost_function.h"
#include "core/dataset.h"
#include "core/query_control.h"
#include "core/upgrade_result.h"
#include "obs/phase_timings.h"
#include "rtree/flat_rtree.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

/// Parallel improved probing over `threads` workers (0 = one per hardware
/// thread). Same contract and results as `TopKImprovedProbing`; `stats`
/// aggregates all workers (see `ExecStats::MergeFrom`).
///
/// All four entries accept an optional `control` token: every shard polls
/// it each `QueryControl::kPollStride` candidates and the whole query
/// unwinds with `kCancelled`/`kDeadlineExceeded` when it fires. A query
/// that completes returns results identical to `control == nullptr`.
Result<std::vector<UpgradeResult>> TopKImprovedProbingParallel(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    size_t threads = 0, ExecStats* stats = nullptr,
    QueryTelemetry* telemetry = nullptr,
    const QueryControl* control = nullptr);

/// Parallel improved probing over the flat arena snapshot: the sharded
/// engine with every worker running the batched SoA probe
/// (rtree/flat_rtree.h). The snapshot is immutable, so workers share it
/// without synchronization. Results stay bit-identical to the sequential
/// and pointer-tree paths for every thread count.
Result<std::vector<UpgradeResult>> TopKImprovedProbingParallel(
    const FlatRTree& competitors_index, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    size_t threads = 0, ExecStats* stats = nullptr,
    QueryTelemetry* telemetry = nullptr,
    const QueryControl* control = nullptr);

/// Parallel basic probing (ADR range query per candidate). Same contract
/// and results as `TopKBasicProbing`.
Result<std::vector<UpgradeResult>> TopKBasicProbingParallel(
    const RTree& competitors_tree, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    size_t threads = 0, ExecStats* stats = nullptr,
    QueryTelemetry* telemetry = nullptr,
    const QueryControl* control = nullptr);

/// Parallel index-free oracle (linear dominator scan per candidate). Same
/// contract and results as `TopKBruteForce`; the pruning bound uses the
/// competitor set's tight bounding box instead of an R-tree root MBR.
Result<std::vector<UpgradeResult>> TopKBruteForceParallel(
    const Dataset& competitors, const Dataset& products,
    const ProductCostFunction& cost_fn, size_t k, double epsilon = 1e-6,
    size_t threads = 0, ExecStats* stats = nullptr,
    QueryTelemetry* telemetry = nullptr,
    const QueryControl* control = nullptr);

}  // namespace skyup

#endif  // SKYUP_CORE_PARALLEL_PROBING_H_
