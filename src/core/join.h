#ifndef SKYUP_CORE_JOIN_H_
#define SKYUP_CORE_JOIN_H_

#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "core/cost_function.h"
#include "core/lower_bounds.h"
#include "core/upgrade_result.h"
#include "obs/phase_timings.h"
#include "rtree/rtree.h"
#include "util/status.h"

namespace skyup {

/// Tuning knobs of the join approach (Algorithm 4).
struct JoinOptions {
  /// Which join-list lower bound prioritizes the heap (Section III-B4).
  LowerBoundKind lower_bound = LowerBoundKind::kConservative;
  /// Pairwise bound formula. The provably-sound correction is the default
  /// (the join is then exact); the paper's formula is available for
  /// fidelity experiments but can prune the true answer. See `BoundMode`
  /// in lower_bounds.h and DESIGN.md finding #1.
  BoundMode bound_mode = BoundMode::kSound;
  /// The upgrade step ε passed to Algorithm 1.
  double epsilon = 1e-6;
  /// Mutual-dominance pruning of join-list entries (Alg. 4 lines 25-30).
  /// Disabling it is an ablation: results are unchanged, work increases.
  bool mutual_dominance_pruning = true;
  /// When a *product* (leaf T-entry) surfaces with a zero join-list bound
  /// — which happens for every product whenever T overlaps P's bounding
  /// box, e.g. the wine workload — Algorithm 4 as written immediately
  /// computes its exact cost, degenerating into probing every product.
  /// With this flag (a library improvement, on by default) such a leaf's
  /// join list is refined first, letting deep P-entries below the product
  /// yield positive bounds that defer or entirely skip the exact
  /// computation. Under the sound bound mode results are provably
  /// unchanged; set to false for the verbatim paper behaviour
  /// (bench_ablation quantifies the difference).
  bool refine_zero_bound_leaves = true;
};

/// Progressive executor of the join approach: results stream out cheapest
/// first, one per `Next()` call, without processing all of `T` — the
/// paper's key advantage over probing.
///
/// Both trees and the cost function must outlive the cursor.
class JoinCursor {
 public:
  /// Validates dimensionalities and seeds the traversal. Both trees must
  /// be non-empty and share the cost function's dimensionality.
  static Result<JoinCursor> Create(const RTree* competitors_tree,
                                   const RTree* products_tree,
                                   const ProductCostFunction* cost_fn,
                                   JoinOptions options = {});

  JoinCursor(JoinCursor&&) = default;
  JoinCursor& operator=(JoinCursor&&) = default;

  /// The next cheapest upgradable product, or nullopt once every product
  /// of `T` has been reported. Results come in nondecreasing cost order.
  std::optional<UpgradeResult> Next();

  const ExecStats& stats() const { return stats_; }

  /// Starts collecting phase timings and latency histograms. Off by
  /// default: the cursor's phase clock is chained, so between-`Next()`
  /// caller time would be attributed too — enable only when the cursor is
  /// driven to completion in one stretch (as `TopKJoin` does).
  void EnableTelemetry();

  /// Flushes collected telemetry (one shard: the cursor is sequential)
  /// into `out`; no-op unless `EnableTelemetry` was called.
  void FlushTelemetry(QueryTelemetry* out) const;

 private:
  /// A T-side or P-side R-tree entry: a node, or a data point (leaf entry).
  struct EntryRef {
    const RTreeNode* node = nullptr;
    PointId point = kInvalidPointId;

    bool is_node() const { return node != nullptr; }
  };

  /// One heap element: a T-side entry with its join list and priority.
  /// `exact` marks a product whose true upgrading cost has been computed
  /// (the paper's empty-join-list convention).
  struct HeapItem {
    double cost = 0.0;
    uint64_t seq = 0;
    bool exact = false;
    bool competitive = false;
    EntryRef et;
    std::vector<EntryRef> jl;
    std::vector<double> upgraded;
  };

  struct HeapGreater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      // lint: float-eq-ok (deterministic heap tie-break on seq)
      if (a.cost != b.cost) return a.cost > b.cost;
      return a.seq > b.seq;
    }
  };

  JoinCursor(const RTree* competitors_tree, const RTree* products_tree,
             const ProductCostFunction* cost_fn, JoinOptions options);

  const double* PMin(const EntryRef& e) const;
  const double* PMax(const EntryRef& e) const;
  const double* TMin(const EntryRef& e) const;
  const double* TMax(const EntryRef& e) const;

  double JoinListBound(const double* et_min, const std::vector<EntryRef>& jl,
                       std::vector<double>* pair_lbcs) const;

  /// Heuristic 1: replace e_T by its child entries, each with the filtered
  /// join list and fresh LBC priority (Alg. 4 lines 14-20).
  void ExpandT(HeapItem item);

  /// Heuristics 2-4: replace one P-side node of the join list by its
  /// children, with ADR filtering and mutual-dominance pruning (lines
  /// 22-32). `pick` indexes the chosen entry.
  void RefineJl(HeapItem item, size_t pick);

  /// Chooses the join-list node entry to refine, or nullopt to expand e_T
  /// instead. Implements Heuristics 3 and 4 plus the fallbacks documented
  /// in DESIGN.md.
  std::optional<size_t> ChooseJlEntry(const HeapItem& item) const;

  /// Computes the exact upgrading cost of a product-level entry and pushes
  /// it back as `exact` (lines 9-11).
  void ComputeExact(HeapItem item);

  void Push(HeapItem item) { heap_.push(std::move(item)); }

  const RTree* rp_;
  const RTree* rt_;
  const ProductCostFunction* cost_fn_;
  JoinOptions options_;
  size_t dims_;
  uint64_t seq_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapGreater> heap_;
  // Mutable: const helpers (bound computation, entry choice) account their
  // work here.
  mutable ExecStats stats_;
  // By pointer so the cursor stays movable (ShardTelemetry pins itself);
  // null until EnableTelemetry.
  std::unique_ptr<ShardTelemetry> telemetry_;
};

/// One-shot wrapper: runs the cursor until `k` results (or exhaustion of
/// T) and returns them sorted by (cost, product id).
Result<std::vector<UpgradeResult>> TopKJoin(const RTree& competitors_tree,
                                            const RTree& products_tree,
                                            const ProductCostFunction& cost_fn,
                                            size_t k, JoinOptions options = {},
                                            ExecStats* stats = nullptr,
                                            QueryTelemetry* telemetry = nullptr);

}  // namespace skyup

#endif  // SKYUP_CORE_JOIN_H_
