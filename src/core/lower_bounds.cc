#include "core/lower_bounds.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "rtree/mbr.h"
#include "util/logging.h"

namespace skyup {

const char* LowerBoundKindName(LowerBoundKind kind) {
  switch (kind) {
    case LowerBoundKind::kNaive:
      return "NLB";
    case LowerBoundKind::kConservative:
      return "CLB";
    case LowerBoundKind::kAggressive:
      return "ALB";
  }
  return "?";
}

DimClassification ClassifyDims(const double* et_min, const double* ep_min,
                               const double* ep_max, size_t dims) {
  SKYUP_DCHECK(dims <= 32);
  DimClassification cls;
  for (size_t i = 0; i < dims; ++i) {
    const uint32_t bit = 1u << i;
    if (et_min[i] < ep_min[i]) {
      cls.advantaged |= bit;
    } else if (ep_max[i] < et_min[i]) {
      cls.disadvantaged |= bit;
    } else {
      cls.incomparable |= bit;
    }
  }
  return cls;
}

const char* BoundModeName(BoundMode mode) {
  switch (mode) {
    case BoundMode::kPaper:
      return "paper";
    case BoundMode::kSound:
      return "sound";
  }
  return "?";
}

namespace {

// Section III-B3 verbatim: the virtual target t_v matches e_P.max on
// disadvantaged dimensions and keeps e_T.min elsewhere (case 3 is the
// special case with no incomparable dimensions, where t_v == e_P.max).
double PaperPairBound(const double* et_min, const double* ep_max,
                      const DimClassification& cls, size_t dims,
                      const ProductCostFunction& cost_fn) {
  double cost = 0.0;
  for (size_t i = 0; i < dims; ++i) {
    if ((cls.disadvantaged & (1u << i)) != 0) {
      cost += cost_fn.AttributeCost(i, ep_max[i]) -
              cost_fn.AttributeCost(i, et_min[i]);
    }
  }
  return std::max(cost, 0.0);
}

// Corrected bound (library extension): what escaping the dominators that a
// *tight* MBR guarantees e_P to contain must cost. Upgrades never worsen an
// attribute (t' <= t componentwise, as in Algorithm 1), so per-dimension
// cost deltas are non-negative and sum.
//
//  * Two or more incomparable dimensions: for each such dimension, the
//    point touching its min face may sit above e_T.min on another
//    incomparable dimension, so e_P may contain no dominator at all —
//    bound 0.
//  * One incomparable dimension i: the point touching e_P.min on i is
//    coordinatewise <= e_T.min (below it on all disadvantaged dimensions),
//    hence a guaranteed dominator. Escaping a single dominator q costs at
//    least min over dimensions k of w_k (f_a^k(q_k) - f_a^k(e_T.min_k));
//    bound each term by the box corner (q_k <= e_P.max_k; q_i = e_P.min_i
//    on the face).
//  * No incomparable dimension: every point of e_P dominates e_T.min, and
//    tightness guarantees a dominator on *each* min face. Let
//    c_k = w_k (f_a^k(e_P.max_k) - f_a^k(e_T.min_k)) and
//    m_k = w_k (f_a^k(e_P.min_k) - f_a^k(e_T.min_k)). If the upgrade dips
//    below e_P.min on some dimension it pays >= min_k m_k. Otherwise, the
//    face dominator of dimension i can only be escaped on a dimension
//    j != i that improved below e_P.max_j; covering every i that way needs
//    improvements on >= 2 distinct dimensions, costing at least the two
//    smallest c_k combined. The bound is the min of the two scenarios —
//    roughly twice the single-escape value, still far below the paper's
//    all-dimensions sum.
double SoundPairBound(const double* et_min, const double* ep_min,
                      const double* ep_max, const DimClassification& cls,
                      size_t dims, const ProductCostFunction& cost_fn) {
  int incomparable_count = 0;
  for (size_t i = 0; i < dims; ++i) {
    if ((cls.incomparable & (1u << i)) != 0) ++incomparable_count;
  }
  if (incomparable_count >= 2) return 0.0;

  const double inf = std::numeric_limits<double>::infinity();
  if (incomparable_count == 1) {
    double cheapest = inf;
    for (size_t i = 0; i < dims; ++i) {
      const uint32_t bit = 1u << i;
      double escape;
      if ((cls.disadvantaged & bit) != 0) {
        escape = cost_fn.AttributeCost(i, ep_max[i]) -
                 cost_fn.AttributeCost(i, et_min[i]);
      } else {
        escape = cost_fn.AttributeCost(i, ep_min[i]) -
                 cost_fn.AttributeCost(i, et_min[i]);
      }
      cheapest = std::min(cheapest, escape);
    }
    return std::max(cheapest, 0.0);
  }

  // All dimensions disadvantaged.
  if (dims == 1) {
    // A 1-d box: the only escape dips below its min face.
    return std::max(cost_fn.AttributeCost(0, ep_min[0]) -
                        cost_fn.AttributeCost(0, et_min[0]),
                    0.0);
  }
  double min_face_escape = inf;  // min_k m_k
  double c1 = inf, c2 = inf;     // two smallest c_k
  for (size_t i = 0; i < dims; ++i) {
    const double m = cost_fn.AttributeCost(i, ep_min[i]) -
                     cost_fn.AttributeCost(i, et_min[i]);
    const double c = cost_fn.AttributeCost(i, ep_max[i]) -
                     cost_fn.AttributeCost(i, et_min[i]);
    min_face_escape = std::min(min_face_escape, m);
    if (c < c1) {
      c2 = c1;
      c1 = c;
    } else {
      c2 = std::min(c2, c);
    }
  }
  return std::max(std::min(min_face_escape, c1 + c2), 0.0);
}

}  // namespace

double LbcPair(const double* et_min, const double* ep_min,
               const double* ep_max, size_t dims,
               const ProductCostFunction& cost_fn, BoundMode mode) {
  const DimClassification cls = ClassifyDims(et_min, ep_min, ep_max, dims);
  // Case 1: an advantaged dimension alone keeps e_T.min undominated.
  // Case 2: every dimension incomparable — e_P may hold only points that
  // do not dominate e_T.min.
  if (cls.advantaged != 0 || cls.disadvantaged == 0) return 0.0;

  if (mode == BoundMode::kPaper) {
    return PaperPairBound(et_min, ep_max, cls, dims, cost_fn);
  }
  return SoundPairBound(et_min, ep_min, ep_max, cls, dims, cost_fn);
}

namespace {

double JoinListBound(const double* et_min,
                     const std::vector<EntryBounds>& join_list, size_t dims,
                     const ProductCostFunction& cost_fn, LowerBoundKind kind,
                     BoundMode mode, std::vector<double>* pair_lbcs) {
  if (pair_lbcs != nullptr) {
    pair_lbcs->clear();
    pair_lbcs->reserve(join_list.size());
  }
  if (join_list.empty()) return 0.0;

  const double inf = std::numeric_limits<double>::infinity();
  switch (kind) {
    case LowerBoundKind::kNaive: {
      double bound = inf;
      for (const EntryBounds& e : join_list) {
        const double lbc = LbcPair(et_min, e.min, e.max, dims, cost_fn, mode);
        if (pair_lbcs != nullptr) pair_lbcs->push_back(lbc);
        bound = std::min(bound, lbc);
      }
      return bound;
    }
    case LowerBoundKind::kConservative: {
      double bound = inf;
      for (const EntryBounds& e : join_list) {
        const double lbc = LbcPair(et_min, e.min, e.max, dims, cost_fn, mode);
        if (pair_lbcs != nullptr) pair_lbcs->push_back(lbc);
        if (lbc > 0.0) bound = std::min(bound, lbc);
      }
      // JL' empty: every entry admits a zero-cost outcome.
      return bound == inf ? 0.0 : bound;
    }
    case LowerBoundKind::kAggressive: {
      // Group positive-LBC entries by their dimension signature; entries in
      // one group constrain the same dimensions, so the *max* within the
      // group must be paid; incomparable groups are alternatives, so the
      // min across groups is the bound (Equation 4).
      std::unordered_map<uint64_t, double> group_max;
      for (const EntryBounds& e : join_list) {
        const double lbc = LbcPair(et_min, e.min, e.max, dims, cost_fn, mode);
        if (pair_lbcs != nullptr) pair_lbcs->push_back(lbc);
        if (lbc <= 0.0) continue;
        const DimClassification cls =
            ClassifyDims(et_min, e.min, e.max, dims);
        const uint64_t key = (static_cast<uint64_t>(cls.disadvantaged) << 32) |
                             cls.incomparable;
        auto [it, inserted] = group_max.try_emplace(key, lbc);
        if (!inserted) it->second = std::max(it->second, lbc);
      }
      if (group_max.empty()) return 0.0;
      double bound = inf;
      // lint: unordered-iter-ok (min over all groups — commutative
      // reduction, hash order cannot reach the result)
      for (const auto& [key, value] : group_max) {
        bound = std::min(bound, value);
      }
      return bound;
    }
  }
  SKYUP_CHECK(false) << "unreachable";
  return 0.0;
}

}  // namespace

double LbcJoinList(const double* et_min,
                   const std::vector<EntryBounds>& join_list, size_t dims,
                   const ProductCostFunction& cost_fn, LowerBoundKind kind,
                   BoundMode mode) {
  return JoinListBound(et_min, join_list, dims, cost_fn, kind, mode, nullptr);
}

double LbcJoinListWithDetails(const double* et_min,
                              const std::vector<EntryBounds>& join_list,
                              size_t dims, const ProductCostFunction& cost_fn,
                              LowerBoundKind kind, BoundMode mode,
                              std::vector<double>* pair_lbcs) {
  SKYUP_CHECK(pair_lbcs != nullptr);
  return JoinListBound(et_min, join_list, dims, cost_fn, kind, mode,
                       pair_lbcs);
}

}  // namespace skyup
