#ifndef SKYUP_CORE_LOWER_BOUNDS_H_
#define SKYUP_CORE_LOWER_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "core/cost_function.h"

namespace skyup {

/// The three join-list lower bounds of Section III-B4.
enum class LowerBoundKind {
  kNaive,         ///< NLB, Equation 2: min over all join-list entries
  kConservative,  ///< CLB, Equation 3: min over entries with positive LBC
  kAggressive,    ///< ALB, Equation 4: min over signature groups of max LBC
};

const char* LowerBoundKindName(LowerBoundKind kind);

/// Which pairwise `LBC(e_T, e_P)` formula underlies the join-list bounds.
///
/// `kPaper` is the formula of Section III-B3 verbatim. Its cases 3/4 charge
/// the cost of matching e_P.max on *every* disadvantaged dimension — but a
/// product escapes domination by beating each dominator on just *one*
/// dimension (which the paper's own Algorithm 1 exploits), so with a convex
/// cost function the paper's value can exceed the true minimal upgrade cost
/// and is, strictly, a heuristic priority rather than a lower bound. It can
/// therefore reorder near-optimal results (see join_test and DESIGN.md).
///
/// `kSound` is this library's corrected bound — the cheapest single-
/// dimension escape from the dominator that a *tight* MBR guarantees to
/// exist — which provably never exceeds the true cost, making the join's
/// progressive output exact.
enum class BoundMode {
  kPaper,
  kSound,
};

const char* BoundModeName(BoundMode mode);

/// Classification of e_T's dimensions against one e_P (Section III-B3),
/// as bitmasks over dimension indices. The three sets partition the
/// dimensions.
struct DimClassification {
  uint32_t advantaged = 0;     ///< e_T.min < e_P.min
  uint32_t disadvantaged = 0;  ///< e_P.max < e_T.min
  uint32_t incomparable = 0;   ///< e_P.min <= e_T.min <= e_P.max
};

DimClassification ClassifyDims(const double* et_min, const double* ep_min,
                               const double* ep_max, size_t dims);

/// `LBC(e_T, e_P)`: a lower bound on the cost of upgrading *any* point in
/// e_T so that no point in e_P dominates it (cases 1-4 of Section III-B3).
/// For a point entry pass the point's coordinates as both min and max.
double LbcPair(const double* et_min, const double* ep_min,
               const double* ep_max, size_t dims,
               const ProductCostFunction& cost_fn,
               BoundMode mode = BoundMode::kPaper);

/// Min/max corners of one join-list entry, as raw pointers into the entry's
/// node MBR or point coordinates.
struct EntryBounds {
  const double* min = nullptr;
  const double* max = nullptr;
};

/// `LBC(e_T, e_T.JL)`: the join-list lower bound of the chosen kind.
/// An empty list yields 0 (no competitor can dominate anything in e_T).
double LbcJoinList(const double* et_min,
                   const std::vector<EntryBounds>& join_list, size_t dims,
                   const ProductCostFunction& cost_fn, LowerBoundKind kind,
                   BoundMode mode = BoundMode::kPaper);

/// As `LbcJoinList`, but also exposes every pairwise LBC (same order as
/// `join_list`) so the join's expansion heuristics can reuse them.
double LbcJoinListWithDetails(const double* et_min,
                              const std::vector<EntryBounds>& join_list,
                              size_t dims, const ProductCostFunction& cost_fn,
                              LowerBoundKind kind, BoundMode mode,
                              std::vector<double>* pair_lbcs);

}  // namespace skyup

#endif  // SKYUP_CORE_LOWER_BOUNDS_H_
