#ifndef SKYUP_CORE_REPORT_H_
#define SKYUP_CORE_REPORT_H_

// Rendering of top-k upgrade rankings for the CLI and downstream tooling:
// human-readable text, headerless CSV, or a JSON array.

#include <ostream>
#include <string>
#include <vector>

#include "core/upgrade_result.h"
#include "util/status.h"

namespace skyup {

enum class ReportFormat {
  kText,  ///< aligned human-readable table
  kCsv,   ///< rank,product_row,cost,competitive,upgraded...
  kJson,  ///< array of objects with the same fields
};

/// Parses "text" / "csv" / "json".
Result<ReportFormat> ParseReportFormat(const std::string& name);

const char* ReportFormatName(ReportFormat format);

/// Writes `results` (assumed already ranked) to `out` in the chosen
/// format. Coordinates print with up to 12 significant digits so CSV and
/// JSON round-trip through doubles losslessly enough for tooling.
void WriteReport(const std::vector<UpgradeResult>& results,
                 ReportFormat format, std::ostream& out);

}  // namespace skyup

#endif  // SKYUP_CORE_REPORT_H_
