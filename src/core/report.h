#ifndef SKYUP_CORE_REPORT_H_
#define SKYUP_CORE_REPORT_H_

// Rendering of top-k upgrade rankings for the CLI and downstream tooling:
// human-readable text, headerless CSV, or a JSON array — plus the metrics
// bridge that turns a query's `ExecStats` work counters and
// `QueryTelemetry` phase breakdown into registered metrics
// (obs/metrics.h), and the `--profile` text renderer.

#include <ostream>
#include <string>
#include <vector>

#include "core/upgrade_result.h"
#include "obs/metrics.h"
#include "obs/phase_timings.h"
#include "util/status.h"

namespace skyup {

enum class ReportFormat {
  kText,  ///< aligned human-readable table
  kCsv,   ///< rank,product_row,cost,competitive,upgraded...
  kJson,  ///< array of objects with the same fields
};

/// Parses "text" / "csv" / "json".
Result<ReportFormat> ParseReportFormat(const std::string& name);

const char* ReportFormatName(ReportFormat format);

/// Writes `results` (assumed already ranked) to `out` in the chosen
/// format. Coordinates print with up to 12 significant digits so CSV and
/// JSON round-trip through doubles losslessly enough for tooling.
void WriteReport(const std::vector<UpgradeResult>& results,
                 ReportFormat format, std::ostream& out);

/// Registers every `ExecStats` work counter on `registry` as a
/// `skyup_<field>_total` counter (idempotent names: re-registering
/// returns the same metric, so repeated queries accumulate). Covers all
/// 14 fields — a compile-time tripwire in the implementation breaks when
/// `ExecStats` changes shape without this function following.
void AddExecStatsMetrics(const ExecStats& stats, MetricsRegistry* registry);

/// Registers one query's phase breakdown (per-phase seconds and shard
/// count as gauges, total attributed seconds) and merges its probe /
/// upgrade latency histograms into `skyup_probe_latency_seconds` /
/// `skyup_upgrade_latency_seconds`.
void AddTelemetryMetrics(const QueryTelemetry& telemetry,
                         MetricsRegistry* registry);

/// Human-readable per-phase profile for CLI `--profile`: each phase's
/// seconds and share of the attributed time, per-shard rows when more
/// than one shard ran, and the p50/p95/p99 of the latency histograms.
/// `wall_seconds` (<= 0 to omit) adds an attribution-coverage line.
void WriteProfile(const QueryTelemetry& telemetry, double wall_seconds,
                  std::ostream& out);

}  // namespace skyup

#endif  // SKYUP_CORE_REPORT_H_
