#include "core/cost_function.h"

#include <cmath>
#include <sstream>

#include "core/dominance.h"
#include "core/point.h"
#include "util/logging.h"
#include "util/random.h"

namespace skyup {

ReciprocalCost::ReciprocalCost(double delta) : delta_(delta) {
  SKYUP_CHECK(delta > 0.0) << "reciprocal cost requires delta > 0";
}

double ReciprocalCost::Cost(double value) const {
  return 1.0 / (value + delta_);
}

std::string ReciprocalCost::name() const {
  std::ostringstream out;
  out << "reciprocal(delta=" << delta_ << ")";
  return out.str();
}

LinearCost::LinearCost(double intercept, double slope)
    : intercept_(intercept), slope_(slope) {
  SKYUP_CHECK(slope >= 0.0) << "linear cost slope must be >= 0";
}

double LinearCost::Cost(double value) const {
  return intercept_ - slope_ * value;
}

std::string LinearCost::name() const {
  std::ostringstream out;
  out << "linear(intercept=" << intercept_ << ", slope=" << slope_ << ")";
  return out.str();
}

ExponentialCost::ExponentialCost(double scale, double rate)
    : scale_(scale), rate_(rate) {
  SKYUP_CHECK(scale >= 0.0 && rate >= 0.0);
}

double ExponentialCost::Cost(double value) const {
  return scale_ * std::exp(-rate_ * value);
}

std::string ExponentialCost::name() const {
  std::ostringstream out;
  out << "exponential(scale=" << scale_ << ", rate=" << rate_ << ")";
  return out.str();
}

PowerCost::PowerCost(double scale, double exponent, double delta)
    : scale_(scale), exponent_(exponent), delta_(delta) {
  SKYUP_CHECK(scale >= 0.0 && exponent >= 0.0 && delta > 0.0);
}

double PowerCost::Cost(double value) const {
  return scale_ * std::pow(value + delta_, -exponent_);
}

std::string PowerCost::name() const {
  std::ostringstream out;
  out << "power(scale=" << scale_ << ", exponent=" << exponent_
      << ", delta=" << delta_ << ")";
  return out.str();
}

ProductCostFunction::ProductCostFunction(
    std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim,
    std::vector<double> weights)
    : per_dim_(std::move(per_dim)), weights_(std::move(weights)) {}

Result<ProductCostFunction> ProductCostFunction::Sum(
    std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim) {
  return WeightedSum(std::move(per_dim), {});
}

Result<ProductCostFunction> ProductCostFunction::WeightedSum(
    std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim,
    std::vector<double> weights) {
  if (per_dim.empty()) {
    return Status::InvalidArgument(
        "a product cost function needs at least one dimension");
  }
  for (size_t i = 0; i < per_dim.size(); ++i) {
    if (per_dim[i] == nullptr) {
      return Status::InvalidArgument("attribute cost function for dimension " +
                                     std::to_string(i) + " is null");
    }
  }
  if (weights.empty()) {
    weights.assign(per_dim.size(), 1.0);
  } else if (weights.size() != per_dim.size()) {
    return Status::InvalidArgument(
        "weights size " + std::to_string(weights.size()) +
        " does not match dimensionality " + std::to_string(per_dim.size()));
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] >= 0.0)) {
      return Status::InvalidArgument("weight for dimension " +
                                     std::to_string(i) +
                                     " must be non-negative");
    }
  }
  return ProductCostFunction(std::move(per_dim), std::move(weights));
}

ProductCostFunction ProductCostFunction::ReciprocalSum(size_t dims,
                                                       double delta) {
  SKYUP_CHECK(dims >= 1);
  std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim;
  per_dim.reserve(dims);
  auto shared = std::make_shared<const ReciprocalCost>(delta);
  for (size_t i = 0; i < dims; ++i) per_dim.push_back(shared);
  Result<ProductCostFunction> r = Sum(std::move(per_dim));
  SKYUP_CHECK(r.ok());
  return std::move(r).value();
}

double ProductCostFunction::Cost(const double* p) const {
  double total = 0.0;
  for (size_t i = 0; i < per_dim_.size(); ++i) {
    total += weights_[i] * per_dim_[i]->Cost(p[i]);
  }
  return total;
}

double ProductCostFunction::Cost(const std::vector<double>& p) const {
  SKYUP_DCHECK(p.size() == dims());
  return Cost(p.data());
}

double ProductCostFunction::AttributeCost(size_t dim, double value) const {
  SKYUP_DCHECK(dim < dims());
  return weights_[dim] * per_dim_[dim]->Cost(value);
}

double ProductCostFunction::UpgradeCost(const double* original,
                                        const double* upgraded) const {
  return Cost(upgraded) - Cost(original);
}

Status ProductCostFunction::CheckMonotonicity(double lo, double hi,
                                              size_t samples,
                                              uint64_t seed) const {
  if (!(lo < hi)) {
    return Status::InvalidArgument("CheckMonotonicity requires lo < hi");
  }
  Rng rng(seed);
  const size_t d = dims();
  std::vector<double> better(d);
  std::vector<double> worse(d);
  // Tolerance proportional to the magnitude of the costs involved.
  for (size_t s = 0; s < samples; ++s) {
    for (size_t i = 0; i < d; ++i) {
      const double a = rng.NextDouble(lo, hi);
      const double b = rng.NextDouble(lo, hi);
      better[i] = std::min(a, b);
      worse[i] = std::max(a, b);
    }
    if (!Dominates(better.data(), worse.data(), d)) continue;  // all equal
    const double cb = Cost(better.data());
    const double cw = Cost(worse.data());
    const double tol = 1e-9 * (std::fabs(cb) + std::fabs(cw) + 1.0);
    if (cb + tol < cw) {
      return Status::FailedPrecondition(
          "cost function is not monotonic: Cost" + PointToString(better) +
          " = " + std::to_string(cb) + " < Cost" + PointToString(worse) +
          " = " + std::to_string(cw) + " although the former dominates");
    }
  }
  return Status::OK();
}

}  // namespace skyup
