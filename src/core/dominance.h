#ifndef SKYUP_CORE_DOMINANCE_H_
#define SKYUP_CORE_DOMINANCE_H_

#include <cstddef>
#include <vector>

#include "core/point.h"

namespace skyup {

/// Outcome of comparing two points under the dominance relation (smaller is
/// better on every dimension).
enum class DomRelation {
  kDominates,     ///< first point dominates the second
  kDominatedBy,   ///< first point is dominated by the second
  kEqual,         ///< identical on every dimension
  kIncomparable,  ///< neither dominates
};

/// True iff `a` dominates `b`: a[i] <= b[i] on all dimensions and a[i] < b[i]
/// on at least one (Definition 3 of the paper, minimize orientation).
bool Dominates(const double* a, const double* b, size_t dims);

/// True iff a[i] <= b[i] on every dimension (dominates or is equal).
bool DominatesOrEqual(const double* a, const double* b, size_t dims);

/// Full three-way-plus-incomparable classification in one pass.
DomRelation Compare(const double* a, const double* b, size_t dims);

inline bool Dominates(const std::vector<double>& a,
                      const std::vector<double>& b) {
  return a.size() == b.size() && Dominates(a.data(), b.data(), a.size());
}
inline bool DominatesOrEqual(const std::vector<double>& a,
                             const std::vector<double>& b) {
  return a.size() == b.size() &&
         DominatesOrEqual(a.data(), b.data(), a.size());
}
inline bool Dominates(PointView a, PointView b) {
  return a.dims() == b.dims() && Dominates(a.data(), b.data(), a.dims());
}

}  // namespace skyup

#endif  // SKYUP_CORE_DOMINANCE_H_
