#ifndef SKYUP_OBS_LOG_H_
#define SKYUP_OBS_LOG_H_

// Structured, leveled JSONL logging for the serve tier.
//
// Every record is one JSON object per line: a timestamp, a level, an
// event name, and typed key/value fields (query ids, epochs, counters).
// Records are built lock-free on the emitting thread's stack and handed
// to a process-global sink whose mutex is the innermost leaf of the
// global lock order (`lock_order::kObsLog`), so any layer may log while
// holding any other lock — including the metrics/trace registries and
// the flight recorder.
//
// Cost discipline matches obs/trace.h: with no sink installed (the
// default) or the level filtered out, `LogRecord`'s constructor reads
// one relaxed atomic and every field call is a no-op — no clock reads,
// no string building. The CLI installs a file sink via `--slow-log` /
// structured-log flags; tests install an `std::ostringstream`.
//
// Usage:
//   LogRecord(LogLevel::kInfo, "publish")
//       .U64("epoch", epoch).F64("age_s", age).Str("kind", "major");
//   // emits on destruction (end of the full expression)

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/status.h"

namespace skyup {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lower-case level name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

namespace internal {
// Combined gate: the minimum level admitted by the sink, or a sentinel
// (> kError) when no sink is installed. One relaxed load decides whether
// a record gets built at all; the value only changes on sink
// (re)configuration, which is rare and racing emitters merely see the
// old gate one record longer.
extern std::atomic<int> g_log_gate;
}  // namespace internal

/// True when a record at `level` would reach the sink. One relaxed load.
inline bool LogEnabled(LogLevel level) {
  // lint: relaxed-ok (pure gate; rationale on g_log_gate)
  return static_cast<int>(level) >=
         internal::g_log_gate.load(std::memory_order_relaxed);
}

/// Installs `out` as the process-global log sink (nullptr uninstalls).
/// The stream must outlive the sink installation; writes to it are
/// serialized by the sink mutex. Replaces any file sink.
void SetLogStream(std::ostream* out, LogLevel min_level = LogLevel::kInfo);

/// Opens `path` for appending and installs it as the sink. Replaces any
/// previous sink (closing a previously opened file).
Status SetLogFile(const std::string& path,
                  LogLevel min_level = LogLevel::kInfo);

/// Removes the sink (closing a file sink if one is open). Logging
/// reverts to the free no-sink fast path.
void CloseLogSink();

/// Flushes the underlying stream, if any.
void FlushLogSink();

/// Counters for tests and capacity checks.
struct LogStats {
  uint64_t emitted = 0;   ///< records written to a sink
  uint64_t filtered = 0;  ///< records built but dropped by a gate race
};
LogStats GetLogStats();

/// JSON string escaping shared by the obs/ exporters (log records,
/// flight-recorder dumps, trace thread names).
std::string JsonEscape(const std::string& s);
void AppendJsonEscaped(std::string* out, const char* s);

/// One structured record, built on the stack and emitted on destruction.
/// If the gate rejects the level at construction, every method is a
/// no-op and nothing is emitted. Field keys must be JSON-safe literals
/// (they are written unescaped); values are escaped/formatted per type.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* event);
  ~LogRecord();

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  LogRecord& U64(const char* key, uint64_t value);
  LogRecord& I64(const char* key, int64_t value);
  LogRecord& F64(const char* key, double value);
  LogRecord& Bool(const char* key, bool value);
  LogRecord& Str(const char* key, const std::string& value);

 private:
  std::string line_;  // empty ⇔ gated off
};

}  // namespace skyup

#endif  // SKYUP_OBS_LOG_H_
