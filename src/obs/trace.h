#ifndef SKYUP_OBS_TRACE_H_
#define SKYUP_OBS_TRACE_H_

// Scoped tracing: RAII spans over the shared monotonic clock
// (util/timer.h), recorded into lock-free thread-local ring buffers and
// exported as Chrome trace-event JSON, so any run can be opened in
// chrome://tracing or https://ui.perfetto.dev with one track per thread
// (the parallel engine names its shard threads, so shards show up as
// named tracks).
//
// `SKYUP_TRACE_LEVEL` (a CMake option of the same name) selects how much
// instrumentation is compiled in:
//
//   0  "off"      both span macros compile to nothing — zero code, zero
//                 data, proven by the trace-off CI build.
//   1  "phase"    the default. `SKYUP_TRACE_SPAN` is live: query-, shard-
//                 and phase-granular spans only, cheap enough to leave on
//                 (< 2% on the bench_micro top-k medians; the budget is
//                 recorded in docs/algorithms.md).
//   2  "verbose"  adds `SKYUP_TRACE_SPAN_VERBOSE`: per-candidate probe and
//                 upgrade spans. For deep-dives; expect large traces.
//
// Compiled-in spans still cost nothing until tracing is enabled at
// runtime (`EnableTracing`, or the CLI's `--trace-out=FILE`): a disabled
// span is one relaxed atomic load, no clock reads, no buffer writes.
//
// Span names must be string literals (or otherwise outlive the trace
// session) — the ring buffer stores the pointer, not a copy. The lint
// rule "trace-span-literal" (tools/lint.py) enforces this at call sites.
//
// Spans can carry a query id (`SKYUP_TRACE_SPAN_Q`), exported as
// `args: {"qid": N}` so one query is correlatable across its trace
// spans, log records, and flight-recorder entry.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/status.h"
#include "util/timer.h"

#ifndef SKYUP_TRACE_LEVEL
#define SKYUP_TRACE_LEVEL 1
#endif

#if SKYUP_TRACE_LEVEL < 0 || SKYUP_TRACE_LEVEL > 2
#error "SKYUP_TRACE_LEVEL must be 0 (off), 1 (phase), or 2 (verbose)"
#endif

namespace skyup {

/// The compiled-in trace level of this translation unit: 0 off, 1 phase,
/// 2 verbose. (A constant, not a function, so tests can branch on it.)
inline constexpr int kTraceLevel = SKYUP_TRACE_LEVEL;

/// Human-readable name of `kTraceLevel`.
constexpr const char* TraceLevelName() {
  return kTraceLevel == 0 ? "off" : kTraceLevel == 1 ? "phase" : "verbose";
}

namespace internal {
// The runtime gate all compiled-in spans check first. Relaxed is enough:
// a span that races with Enable/Disable is merely recorded or skipped,
// never torn — the buffers themselves are thread-local.
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True while span recording is on. One relaxed atomic load.
inline bool TraceEnabled() {
  // lint: relaxed-ok (pure on/off gate; rationale on g_trace_enabled)
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Starts a fresh trace session: clears every thread's buffer, resets the
/// trace epoch (exported timestamps are relative to it), and turns span
/// recording on. No-op semantics at trace level off (spans are compiled
/// out; the session machinery still works and exports zero events).
void EnableTracing();

/// Stops span recording. Buffers keep their events for export.
void DisableTracing();

/// Drops all recorded events (and retired threads' buffers) without
/// touching the enabled flag.
void ClearTrace();

/// Names the calling thread's track in the exported trace (e.g.
/// "shard 3"). Safe to call repeatedly; the last name wins.
void SetTraceThreadName(const std::string& name);

/// Aggregate recording counters, for tests and capacity tuning.
struct TraceStats {
  size_t events_buffered = 0;  ///< events currently held across buffers
  size_t events_dropped = 0;   ///< overwritten by ring wrap-around
  size_t threads = 0;          ///< thread buffers ever registered
};
TraceStats GetTraceStats();

/// Writes every buffered span as Chrome trace-event JSON ("X" complete
/// events plus process/thread-name metadata). The output is a single JSON
/// object, loadable by chrome://tracing and Perfetto. Call after worker
/// threads have been joined — export takes the registry lock but does not
/// synchronize with threads still recording.
void WriteChromeTrace(std::ostream& out);

/// `WriteChromeTrace` into a file; fails with IOError if it cannot write.
Status WriteChromeTraceFile(const std::string& path);

/// One span read back from the calling thread's buffer (newest-last).
/// `name` is the call site's string literal.
struct RecentSpan {
  const char* name;
  int64_t start_ns;  ///< relative to the session epoch
  int64_t dur_ns;
  uint64_t qid;  ///< 0 when the span carried no query id
};

/// Copies up to `max_spans` of the calling thread's most recent spans
/// into `out` (oldest of the selection first) and returns the count.
/// Only reads the caller's own thread-local buffer, so it is safe on a
/// worker that is still recording — the slow-query promotion path uses
/// it to attach the spans a query retained.
size_t CollectRecentSpans(size_t max_spans, RecentSpan* out);

namespace internal {

/// Appends one completed span to the calling thread's ring buffer.
/// `qid` 0 means "no query id".
void RecordSpan(const char* name, SteadyClock::time_point start,
                SteadyClock::time_point end, uint64_t qid);

/// The RAII body behind the span macros. Reads the clock only while
/// tracing is enabled; `name` must outlive the trace session.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      start_ = SteadyClock::now();
    }
  }
  ScopedSpan(const char* name, uint64_t qid) {
    if (TraceEnabled()) {
      name_ = name;
      qid_ = qid;
      start_ = SteadyClock::now();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      RecordSpan(name_, start_, SteadyClock::now(), qid_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t qid_ = 0;
  SteadyClock::time_point start_;
};

}  // namespace internal
}  // namespace skyup

#define SKYUP_INTERNAL_SPAN_CAT2(a, b) a##b
#define SKYUP_INTERNAL_SPAN_CAT(a, b) SKYUP_INTERNAL_SPAN_CAT2(a, b)

// A compiled-out span: no object, no evaluation of `name` (all call sites
// pass string literals, so nothing observable is elided).
#define SKYUP_INTERNAL_ELIDED_SPAN(name) static_cast<void>(0)

#define SKYUP_INTERNAL_ACTIVE_SPAN(name)             \
  ::skyup::internal::ScopedSpan SKYUP_INTERNAL_SPAN_CAT(skyup_trace_span_, \
                                                        __LINE__)(name)

#define SKYUP_INTERNAL_ACTIVE_SPAN_Q(name, qid)                             \
  ::skyup::internal::ScopedSpan SKYUP_INTERNAL_SPAN_CAT(skyup_trace_span_, \
                                                        __LINE__)(name, qid)

/// Phase-granular span covering the enclosing scope. Active at trace
/// level phase and above.
#if SKYUP_TRACE_LEVEL >= 1
#define SKYUP_TRACE_SPAN(name) SKYUP_INTERNAL_ACTIVE_SPAN(name)
/// Like SKYUP_TRACE_SPAN, tagged with a query id exported in the span's
/// Chrome-trace args. `qid` is evaluated once, before the scope body.
#define SKYUP_TRACE_SPAN_Q(name, qid) SKYUP_INTERNAL_ACTIVE_SPAN_Q(name, qid)
#else
#define SKYUP_TRACE_SPAN(name) SKYUP_INTERNAL_ELIDED_SPAN(name)
#define SKYUP_TRACE_SPAN_Q(name, qid) static_cast<void>(sizeof(qid))
#endif

/// Per-candidate span, active only at trace level verbose — these fire
/// once per product probed, so they dominate trace size when on.
#if SKYUP_TRACE_LEVEL >= 2
#define SKYUP_TRACE_SPAN_VERBOSE(name) SKYUP_INTERNAL_ACTIVE_SPAN(name)
#else
#define SKYUP_TRACE_SPAN_VERBOSE(name) SKYUP_INTERNAL_ELIDED_SPAN(name)
#endif

#endif  // SKYUP_OBS_TRACE_H_
