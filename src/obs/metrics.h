#ifndef SKYUP_OBS_METRICS_H_
#define SKYUP_OBS_METRICS_H_

// The metrics layer: counters, gauges, and fixed-bucket latency
// histograms collected into a `MetricsRegistry` and exported as
// Prometheus text exposition or JSON. The registry is an export-time
// aggregation surface — engines keep accounting into their cheap
// per-shard structures (`ExecStats`, `QueryTelemetry`) and the registry
// is populated once per query/export (core/report.h absorbs ExecStats).
//
// Thread safety: registration (Add*) and export (Write*) are serialized
// by the registry's own mutex, so concurrent layers (e.g. the server's
// FillMetrics under its stats lock) can share one registry. Mutating a
// *metric object* (Increment/Set/Observe/MergeFrom through the returned
// pointer) remains caller-serialized, exactly as before — the hot paths
// that feed metrics already run under their own locks or on one thread.
// The registry mutex is a leaf of the global lock order
// (lock_order::kObsRegistry): nothing may be acquired under it.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace skyup {

/// Monotonically increasing count (Prometheus type `counter`).
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value (Prometheus type `gauge`).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus semantics: `bounds` are the
/// inclusive upper edges of the finite buckets (strictly ascending), and
/// an implicit +Inf bucket catches everything beyond the last bound.
/// Designed for non-negative observations (latencies); quantiles
/// interpolate linearly within a bucket, with the first bucket anchored
/// at 0 and the overflow bucket clamped to the last finite bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// The default latency bucketing used by every skyup latency histogram:
  /// 1 µs to ~10 s, four buckets per decade. Merging histograms requires
  /// identical bounds, so shards and queries must share this layout.
  static const std::vector<double>& DefaultLatencyBucketsSeconds();

  void Observe(double value);

  /// Field-wise sum; `other` must have identical bucket bounds (checked).
  /// Associative and commutative, so shard merge order cannot matter.
  Histogram& MergeFrom(const Histogram& other);

  /// The q-quantile (0 <= q <= 1) estimated from the bucket counts.
  /// Returns 0 for an empty histogram; values landing in the +Inf bucket
  /// report the last finite bound (the histogram cannot resolve beyond
  /// it).
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Mean of all observations; 0 when empty.
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; index `bounds().size()` is the +Inf bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 entries
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Owns named metrics and renders them. Names should follow Prometheus
/// conventions (`skyup_<noun>_<unit>`, counters ending in `_total`);
/// registration order is preserved in both exports. Re-registering a name
/// returns the existing metric (same kind required).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(const std::string& name, const std::string& help);
  Gauge* AddGauge(const std::string& name, const std::string& help);
  Histogram* AddHistogram(
      const std::string& name, const std::string& help,
      std::vector<double> bounds = Histogram::DefaultLatencyBucketsSeconds());

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  /// Prometheus text exposition format, version 0.0.4: HELP/TYPE comments,
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
  /// histograms.
  void WritePrometheus(std::ostream& out) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {buckets, sum, count, p50, p95, p99}}}.
  void WriteJson(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name) SKYUP_REQUIRES(mu_);

  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kObsRegistry);
  std::vector<Entry> entries_ SKYUP_GUARDED_BY(mu_);
};

}  // namespace skyup

#endif  // SKYUP_OBS_METRICS_H_
