#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace skyup {

namespace {

// %.9g round-trips the latency magnitudes involved and keeps bucket
// labels stable across exporters (the same formatter feeds Prometheus
// `le` labels and JSON numbers).
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  SKYUP_CHECK(!bounds_.empty()) << "histogram needs at least one bucket";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SKYUP_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly ascending";
  }
}

const std::vector<double>& Histogram::DefaultLatencyBucketsSeconds() {
  // 1 µs .. 10 s, four buckets per decade (1, 2, 5, 10 within each).
  static const std::vector<double>* kBounds = new std::vector<double>{
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};
  return *kBounds;
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; everything beyond
  // the last bound lands in the +Inf bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

Histogram& Histogram::MergeFrom(const Histogram& other) {
  SKYUP_CHECK(bounds_ == other.bounds_)
      << "merging histograms with different bucket layouts";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  return *this;
}

double Histogram::Quantile(double q) const {
  SKYUP_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q << " out of [0, 1]";
  if (count_ == 0) return 0.0;
  // Fractional rank of the target observation (Prometheus
  // histogram_quantile convention). Deliberately NOT ceiled to an integer
  // rank: with all N observations in one bucket, ceil(0.99 * N) == N for
  // any N <= 100, which collapses p99 (and every high quantile) to the
  // bucket's upper edge instead of interpolating 99% of the way in.
  const double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (rank > static_cast<double>(cumulative)) continue;
    if (i == bounds_.size()) {
      // Overflow bucket: the histogram cannot resolve beyond its last
      // finite bound, so clamp (Prometheus convention).
      return bounds_.back();
    }
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double fraction =
        (rank - before) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * fraction;
  }
  return bounds_.back();  // unreachable: cumulative == count_ by invariant
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* existing = Find(name)) {
    SKYUP_CHECK(existing->kind == Kind::kCounter)
        << "metric '" << name << "' already registered with another kind";
    return existing->counter.get();
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Kind::kCounter;
  entry.counter = std::make_unique<Counter>();
  entries_.push_back(std::move(entry));
  return entries_.back().counter.get();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* existing = Find(name)) {
    SKYUP_CHECK(existing->kind == Kind::kGauge)
        << "metric '" << name << "' already registered with another kind";
    return existing->gauge.get();
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Kind::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(entry));
  return entries_.back().gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  if (Entry* existing = Find(name)) {
    SKYUP_CHECK(existing->kind == Kind::kHistogram)
        << "metric '" << name << "' already registered with another kind";
    return existing->histogram.get();
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Kind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(entry));
  return entries_.back().histogram.get();
}

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  MutexLock lock(mu_);
  for (const Entry& entry : entries_) {
    if (!entry.help.empty()) {
      out << "# HELP " << entry.name << " " << entry.help << "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out << "# TYPE " << entry.name << " counter\n";
        out << entry.name << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << entry.name << " gauge\n";
        out << entry.name << " " << Num(entry.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << entry.name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket_counts()[i];
          out << entry.name << "_bucket{le=\"" << Num(h.bounds()[i]) << "\"} "
              << cumulative << "\n";
        }
        out << entry.name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        out << entry.name << "_sum " << Num(h.sum()) << "\n";
        out << entry.name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  // The lambda body is analyzed as its own function, so it takes the
  // entries by parameter instead of touching the guarded member; the
  // guarded access happens below, under the lock.
  auto write_section = [&out](const std::vector<Entry>& entries, Kind kind,
                              const char* label, bool first_section) {
    out << (first_section ? "" : ",\n") << "  \"" << label << "\": {";
    bool first = true;
    for (const Entry& entry : entries) {
      if (entry.kind != kind) continue;
      out << (first ? "\n" : ",\n") << "    \"" << entry.name << "\": ";
      first = false;
      switch (kind) {
        case Kind::kCounter:
          out << entry.counter->value();
          break;
        case Kind::kGauge:
          out << Num(entry.gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *entry.histogram;
          out << "{\"buckets\": [";
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            out << (i == 0 ? "" : ", ") << "{\"le\": " << Num(h.bounds()[i])
                << ", \"count\": " << h.bucket_counts()[i] << "}";
          }
          out << ", {\"le\": \"+Inf\", \"count\": "
              << h.bucket_counts().back() << "}]";
          out << ", \"count\": " << h.count() << ", \"sum\": " << Num(h.sum())
              << ", \"mean\": " << Num(h.mean())
              << ", \"p50\": " << Num(h.Quantile(0.50))
              << ", \"p95\": " << Num(h.Quantile(0.95))
              << ", \"p99\": " << Num(h.Quantile(0.99)) << "}";
          break;
        }
      }
    }
    out << (first ? "}" : "\n  }");
  };

  MutexLock lock(mu_);
  out << "{\n";
  write_section(entries_, Kind::kCounter, "counters", true);
  write_section(entries_, Kind::kGauge, "gauges", false);
  write_section(entries_, Kind::kHistogram, "histograms", false);
  out << "\n}\n";
}

}  // namespace skyup
