#ifndef SKYUP_OBS_FLIGHT_RECORDER_H_
#define SKYUP_OBS_FLIGHT_RECORDER_H_

// Black-box flight recorder for the serve tier: a fixed-size ring of
// completed-query records plus a ring of periodic system samples, kept
// in memory at all times and dumped post hoc (CLI `--flight-out`,
// `Server::DumpDiagnostics`, or SIGUSR1 on a live process).
//
// Everything the PR-4 observability stack exports at end-of-run is
// aggregate; when a query goes slow under churn there is no record of
// what the system was doing at that moment. The recorder closes that
// gap with bounded memory: the query ring holds the last N completed
// queries (id, status, latency, phase breakdown, work counters, cache
// flags), the sample ring holds the last M system snapshots (epoch +
// age, queue depth, delta backlog, tombstone %, memo bytes, publish
// counters). Rings overwrite oldest-first; drop counts are reported in
// the dump so truncation is visible.
//
// Cost discipline: `enabled()` is one relaxed atomic load — a disabled
// recorder costs nothing on the hot path. Recording itself takes the
// recorder mutex (rank `lock_order::kObsFlight`, below the metrics/
// trace registries, above only the log sink) for a struct copy — it is
// off the per-candidate hot path, paid once per completed query.
//
// This is deliberately a plain-data layer: records carry flat integers
// and `PhaseTimings`, not serve-layer types, so obs/ keeps linking only
// against util/ and the sharded front door can reuse it unchanged.

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/phase_timings.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace skyup {

/// One completed query, as remembered by the ring.
struct QueryFlightRecord {
  uint64_t query_id = 0;   ///< admission-assigned id (0 = unattributed)
  uint64_t batch_id = 0;   ///< grouped-execution id (0 = ran solo)
  uint64_t tenant_id = 0;  ///< front-door tenant (0 = single-tenant serve)
  uint64_t epoch = 0;      ///< snapshot epoch the query was served at
  uint64_t end_ts_us = 0;  ///< wall-clock completion time (unix µs)
  StatusCode status = StatusCode::kOk;
  uint32_t k = 0;        ///< requested result count
  uint32_t results = 0;  ///< results actually returned
  double queue_seconds = 0;  ///< admission → execution start
  double wall_seconds = 0;   ///< admission → completion
  PhaseTimings phases;       ///< engine phase breakdown (rolled up)
  uint64_t candidates_evaluated = 0;
  uint64_t candidates_pruned = 0;
  uint64_t delta_ops_scanned = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  /// Sharded scatter-gather attribution (all zero for unsharded serves):
  /// which shard's worker dominated this query's wall time.
  uint32_t shard_count = 0;
  uint32_t slowest_shard = 0;
  double slowest_shard_seconds = 0;
  bool slow = false;  ///< promoted by the --slow-query-us threshold
};

/// One periodic snapshot of serve-tier health.
struct SystemSample {
  uint64_t ts_us = 0;  ///< wall-clock sample time (unix µs)
  uint64_t epoch = 0;
  double snapshot_age_seconds = 0;
  uint64_t queue_depth = 0;    ///< admission queue occupancy
  uint64_t delta_backlog = 0;  ///< unpublished delta ops
  double tombstone_pct = 0;    ///< dead fraction of the snapshot index
  uint64_t memo_bytes = 0;     ///< skyline-memo footprint
  uint64_t rebuilds_published = 0;
  uint64_t patches_published = 0;
  uint64_t live_competitors = 0;
  uint64_t live_products = 0;
};

struct FlightRecorderOptions {
  size_t query_ring = 1024;  ///< completed-query records retained
  size_t sample_ring = 256;  ///< system samples retained
};

/// Lifetime/drop counters, for the dump header and tests.
struct FlightRecorderStats {
  uint64_t queries_recorded = 0;
  uint64_t queries_dropped = 0;  ///< overwritten by ring wrap-around
  uint64_t samples_recorded = 0;
  uint64_t samples_dropped = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderOptions& options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The hot-path gate: one relaxed atomic load. Callers skip record
  /// assembly entirely when false.
  bool enabled() const {
    // lint: relaxed-ok (pure on/off gate; a racing toggle merely
    // records or skips one query, same as the trace gate)
    return enabled_.load(std::memory_order_relaxed);
  }
  /// lint: relaxed-ok (gate toggle; see enabled())
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void RecordQuery(const QueryFlightRecord& record);
  void RecordSample(const SystemSample& sample);

  /// Retained records, oldest-first. Copies under the recorder lock.
  std::vector<QueryFlightRecord> QueryRecords() const;
  std::vector<SystemSample> Samples() const;
  FlightRecorderStats stats() const;

  /// Drops all retained records and resets the drop counters.
  void Clear();

  /// Dumps the rings as JSONL: one `flight_meta` header line, then one
  /// `query` line per retained record (oldest-first), then one `sample`
  /// line per retained sample. Every line is a self-contained JSON
  /// object — `python3 -m json.tool` validates each.
  void WriteJsonl(std::ostream& out) const;

  const FlightRecorderOptions& options() const { return options_; }

 private:
  const FlightRecorderOptions options_;
  std::atomic<bool> enabled_{true};
  mutable Mutex mu_ SKYUP_ACQUIRED_AFTER(lock_order::kObsFlight);
  std::vector<QueryFlightRecord> queries_ SKYUP_GUARDED_BY(mu_);
  std::vector<SystemSample> samples_ SKYUP_GUARDED_BY(mu_);
  uint64_t queries_recorded_ SKYUP_GUARDED_BY(mu_) = 0;
  uint64_t samples_recorded_ SKYUP_GUARDED_BY(mu_) = 0;
};

/// Formats one record / sample as a single-line JSON object (no trailing
/// newline) — shared by `WriteJsonl` and the slow-query log path.
std::string QueryRecordJson(const QueryFlightRecord& record);
std::string SystemSampleJson(const SystemSample& sample);

}  // namespace skyup

#endif  // SKYUP_OBS_FLIGHT_RECORDER_H_
