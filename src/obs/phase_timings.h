#ifndef SKYUP_OBS_PHASE_TIMINGS_H_
#define SKYUP_OBS_PHASE_TIMINGS_H_

// Per-phase wall-time accounting for the top-k engines: where a query's
// time went (probing the index, reducing dominators to their skyline,
// Algorithm 1 upgrades, lower-bound pruning, the final merge), per shard
// and rolled up. This is the timing companion of `ExecStats` — the paper
// argues its experiments by exactly this breakdown (§V: probing vs join,
// dominator fetches vs Algorithm-1 calls), and a regression in
// BENCH_topk.json is only explainable with it.
//
// Collection is pull-based and null-safe: engines lap a `PhaseClock`
// bound to a shard-local `PhaseTimings`; a null sink compiles the laps
// down to a pointer test, so callers that do not ask for telemetry pay
// nothing measurable.

#include <cstddef>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace skyup {

/// Wall seconds spent per engine phase. Laps are contiguous (each lap
/// closes at the next one's start), so the field sum approximates the
/// instrumented region's wall time; `other_seconds` absorbs work that
/// belongs to no named phase, keeping that identity honest.
struct PhaseTimings {
  double probe_seconds = 0;    ///< index traversal / dominator fetch
  double skyline_seconds = 0;  ///< dominator-skyline reduction
  double upgrade_seconds = 0;  ///< Algorithm 1 invocations
  double prune_seconds = 0;    ///< sound lower-bound evaluations
  double merge_seconds = 0;    ///< shard collect/merge/sort
  double other_seconds = 0;    ///< residual attributed to no phase

  /// Field-wise sum, used wherever per-shard timings roll up into one
  /// view. Every field participates.
  PhaseTimings& MergeFrom(const PhaseTimings& other) {
    // Tripwire (the ExecStats pattern): adding a field changes the struct
    // size, which trips this assert until the new field is summed below —
    // and tools/lint.py cross-checks fields, adds, and this multiplier.
    static_assert(sizeof(PhaseTimings) == 6 * sizeof(double),
                  "PhaseTimings gained/lost a field: update MergeFrom");
    auto add = [](double* into, double delta) { *into += delta; };
    add(&probe_seconds, other.probe_seconds);
    add(&skyline_seconds, other.skyline_seconds);
    add(&upgrade_seconds, other.upgrade_seconds);
    add(&prune_seconds, other.prune_seconds);
    add(&merge_seconds, other.merge_seconds);
    add(&other_seconds, other.other_seconds);
    return *this;
  }

  PhaseTimings& operator+=(const PhaseTimings& other) {
    return MergeFrom(other);
  }

  /// Sum of every phase — the wall time the instrumentation attributed.
  double TotalSeconds() const {
    return probe_seconds + skyline_seconds + upgrade_seconds +
           prune_seconds + merge_seconds + other_seconds;
  }
};

/// Phase timings of one query: the per-shard raw values (index = shard,
/// size = worker count actually used; sequential engines report one
/// shard) plus their roll-up. For parallel shards the roll-up sums CPU
/// time across workers, so it can exceed the query's wall clock.
struct PhaseBreakdown {
  PhaseTimings total;
  std::vector<PhaseTimings> per_shard;

  /// Appends one shard's timings and folds them into `total`.
  void AddShard(const PhaseTimings& shard) {
    per_shard.push_back(shard);
    total.MergeFrom(shard);
  }
};

/// Chained lap timer feeding a `PhaseTimings`: every `Lap(&field)` adds
/// the time since the previous lap (or construction) to that field and
/// returns it, so consecutive laps tile the elapsed wall time with no
/// gaps. A null sink disables all clock reads.
class PhaseClock {
 public:
  explicit PhaseClock(PhaseTimings* sink) : sink_(sink) {
    if (sink_ != nullptr) last_ = SteadyClock::now();
  }

  /// Closes the current lap into `field`; returns its seconds (0 when
  /// disabled).
  double Lap(double PhaseTimings::* field) {
    if (sink_ == nullptr) return 0.0;
    const SteadyClock::time_point now = SteadyClock::now();
    const double seconds =
        std::chrono::duration<double>(now - last_).count();
    sink_->*field += seconds;
    last_ = now;
    return seconds;
  }

  bool enabled() const { return sink_ != nullptr; }

 private:
  PhaseTimings* sink_;
  SteadyClock::time_point last_;
};

/// Everything one query reports beyond its results and `ExecStats`: the
/// phase breakdown plus per-candidate latency histograms. Shards collect
/// into local `ShardTelemetry` and flush here once, so the hot path never
/// shares this object.
struct QueryTelemetry {
  PhaseBreakdown phases;
  Histogram probe_latency{Histogram::DefaultLatencyBucketsSeconds()};
  Histogram upgrade_latency{Histogram::DefaultLatencyBucketsSeconds()};
};

/// Per-shard collection context: a phase clock over shard-local timings
/// and latency histograms, flushed into the query-level `QueryTelemetry`
/// after the shard finishes (for parallel engines, on the merging
/// thread). Engines allocate one per shard only when the caller asked for
/// telemetry and pass null otherwise — the `Lap*` free functions below
/// are null-safe so call sites stay unconditional.
class ShardTelemetry {
 public:
  ShardTelemetry() : clock_(&timings_) {}
  ShardTelemetry(const ShardTelemetry&) = delete;  // clock_ points into us
  ShardTelemetry& operator=(const ShardTelemetry&) = delete;

  void LapProbe() {
    probe_latency_.Observe(clock_.Lap(&PhaseTimings::probe_seconds));
  }
  void LapSkyline() { clock_.Lap(&PhaseTimings::skyline_seconds); }
  void LapUpgrade() {
    upgrade_latency_.Observe(clock_.Lap(&PhaseTimings::upgrade_seconds));
  }
  void LapPrune() { clock_.Lap(&PhaseTimings::prune_seconds); }
  void LapMerge() { clock_.Lap(&PhaseTimings::merge_seconds); }
  void LapOther() { clock_.Lap(&PhaseTimings::other_seconds); }

  /// Appends this shard's timings and histograms to `out`.
  void FlushInto(QueryTelemetry* out) const {
    out->phases.AddShard(timings_);
    out->probe_latency.MergeFrom(probe_latency_);
    out->upgrade_latency.MergeFrom(upgrade_latency_);
  }

  const PhaseTimings& timings() const { return timings_; }

 private:
  PhaseTimings timings_;
  PhaseClock clock_;
  Histogram probe_latency_{Histogram::DefaultLatencyBucketsSeconds()};
  Histogram upgrade_latency_{Histogram::DefaultLatencyBucketsSeconds()};
};

// Null-safe lap helpers: engines call these unconditionally on their hot
// paths; with telemetry off (`shard == nullptr`) each is one branch.
inline void LapProbe(ShardTelemetry* shard) {
  if (shard != nullptr) shard->LapProbe();
}
inline void LapSkyline(ShardTelemetry* shard) {
  if (shard != nullptr) shard->LapSkyline();
}
inline void LapUpgrade(ShardTelemetry* shard) {
  if (shard != nullptr) shard->LapUpgrade();
}
inline void LapPrune(ShardTelemetry* shard) {
  if (shard != nullptr) shard->LapPrune();
}
inline void LapMerge(ShardTelemetry* shard) {
  if (shard != nullptr) shard->LapMerge();
}
inline void LapOther(ShardTelemetry* shard) {
  if (shard != nullptr) shard->LapOther();
}

}  // namespace skyup

#endif  // SKYUP_OBS_PHASE_TIMINGS_H_
