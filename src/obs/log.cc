#include "obs/log.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace skyup {

namespace internal {
// Sentinel kError+1 = "no sink": nothing is admitted.
std::atomic<int> g_log_gate{static_cast<int>(LogLevel::kError) + 1};
}  // namespace internal

namespace {

struct LogSink {
  // Innermost leaf of the global lock order: records are emitted from
  // any layer, potentially while holding any other lock, so nothing is
  // ever acquired under this mutex (the write itself is a stream op).
  Mutex mu SKYUP_ACQUIRED_AFTER(lock_order::kObsLog);
  std::ostream* out SKYUP_GUARDED_BY(mu) = nullptr;
  std::unique_ptr<std::ofstream> file SKYUP_GUARDED_BY(mu);
  uint64_t emitted SKYUP_GUARDED_BY(mu) = 0;
  uint64_t filtered SKYUP_GUARDED_BY(mu) = 0;
};

LogSink& Sink() {
  static LogSink* sink = new LogSink();  // leaked: outlives exiting threads
  return *sink;
}

void InstallLocked(LogSink& sink, std::ostream* out,
                   std::unique_ptr<std::ofstream> file, LogLevel min_level)
    SKYUP_REQUIRES(sink.mu) {
  sink.file = std::move(file);
  sink.out = out;
  const int gate = out == nullptr ? static_cast<int>(LogLevel::kError) + 1
                                  : static_cast<int>(min_level);
  // lint: relaxed-ok (gate handoff; a racing emitter sees the old gate
  // for at most one record, and emission re-checks the sink under mu)
  internal::g_log_gate.store(gate, std::memory_order_relaxed);
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void SetLogStream(std::ostream* out, LogLevel min_level) {
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  InstallLocked(sink, out, nullptr, min_level);
}

Status SetLogFile(const std::string& path, LogLevel min_level) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!file->good()) {
    return Status::IOError("cannot open log file '" + path + "'");
  }
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  std::ostream* out = file.get();
  InstallLocked(sink, out, std::move(file), min_level);
  return Status::OK();
}

void CloseLogSink() {
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  InstallLocked(sink, nullptr, nullptr, LogLevel::kError);
}

void FlushLogSink() {
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  if (sink.out != nullptr) sink.out->flush();
}

LogStats GetLogStats() {
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  LogStats stats;
  stats.emitted = sink.emitted;
  stats.filtered = sink.filtered;
  return stats;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonEscaped(std::string* out, const char* s) {
  *out += JsonEscape(std::string(s));
}

LogRecord::LogRecord(LogLevel level, const char* event) {
  if (!LogEnabled(level)) return;
  const int64_t ts_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  line_.reserve(160);
  line_ += "{\"ts_us\":";
  line_ += std::to_string(ts_us);
  line_ += ",\"level\":\"";
  line_ += LogLevelName(level);
  line_ += "\",\"event\":\"";
  AppendJsonEscaped(&line_, event);
  line_ += '"';
}

LogRecord::~LogRecord() {
  if (line_.empty()) return;
  line_ += "}\n";
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  if (sink.out == nullptr) {
    // The gate raced a sink teardown; account and drop.
    ++sink.filtered;
    return;
  }
  *sink.out << line_;
  ++sink.emitted;
}

LogRecord& LogRecord::U64(const char* key, uint64_t value) {
  if (line_.empty()) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

LogRecord& LogRecord::I64(const char* key, int64_t value) {
  if (line_.empty()) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += std::to_string(value);
  return *this;
}

LogRecord& LogRecord::F64(const char* key, double value) {
  if (line_.empty()) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  if (std::isfinite(value)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    line_ += buf;
  } else {
    line_ += "null";  // JSON has no inf/nan
  }
  return *this;
}

LogRecord& LogRecord::Bool(const char* key, bool value) {
  if (line_.empty()) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += value ? "true" : "false";
  return *this;
}

LogRecord& LogRecord::Str(const char* key, const std::string& value) {
  if (line_.empty()) return *this;
  line_ += ",\"";
  line_ += key;
  line_ += "\":\"";
  line_ += JsonEscape(value);
  line_ += '"';
  return *this;
}

}  // namespace skyup
