#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace skyup {

namespace {

void AppendNum(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendField(std::string* out, const char* key, uint64_t v) {
  *out += ",\"";
  *out += key;
  *out += "\":";
  *out += std::to_string(v);
}

void AppendField(std::string* out, const char* key, double v) {
  *out += ",\"";
  *out += key;
  *out += "\":";
  AppendNum(out, v);
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : options_{std::max<size_t>(1, options.query_ring),
               std::max<size_t>(1, options.sample_ring)} {}

void FlightRecorder::RecordQuery(const QueryFlightRecord& record) {
  MutexLock lock(mu_);
  if (queries_.size() < options_.query_ring) {
    queries_.push_back(record);
  } else {
    queries_[queries_recorded_ % options_.query_ring] = record;
  }
  ++queries_recorded_;
}

void FlightRecorder::RecordSample(const SystemSample& sample) {
  MutexLock lock(mu_);
  if (samples_.size() < options_.sample_ring) {
    samples_.push_back(sample);
  } else {
    samples_[samples_recorded_ % options_.sample_ring] = sample;
  }
  ++samples_recorded_;
}

std::vector<QueryFlightRecord> FlightRecorder::QueryRecords() const {
  MutexLock lock(mu_);
  std::vector<QueryFlightRecord> out;
  out.reserve(queries_.size());
  // Oldest-first: once the ring wrapped, the slot at `recorded % size`
  // holds the oldest surviving record.
  const uint64_t held = queries_.size();
  const uint64_t begin = queries_recorded_ - held;
  for (uint64_t i = begin; i < queries_recorded_; ++i) {
    out.push_back(queries_[i % options_.query_ring]);
  }
  return out;
}

std::vector<SystemSample> FlightRecorder::Samples() const {
  MutexLock lock(mu_);
  std::vector<SystemSample> out;
  out.reserve(samples_.size());
  const uint64_t held = samples_.size();
  const uint64_t begin = samples_recorded_ - held;
  for (uint64_t i = begin; i < samples_recorded_; ++i) {
    out.push_back(samples_[i % options_.sample_ring]);
  }
  return out;
}

FlightRecorderStats FlightRecorder::stats() const {
  MutexLock lock(mu_);
  FlightRecorderStats stats;
  stats.queries_recorded = queries_recorded_;
  stats.queries_dropped = queries_recorded_ - queries_.size();
  stats.samples_recorded = samples_recorded_;
  stats.samples_dropped = samples_recorded_ - samples_.size();
  return stats;
}

void FlightRecorder::Clear() {
  MutexLock lock(mu_);
  queries_.clear();
  samples_.clear();
  queries_recorded_ = 0;
  samples_recorded_ = 0;
}

std::string QueryRecordJson(const QueryFlightRecord& record) {
  std::string line = "{\"type\":\"query\"";
  AppendField(&line, "query_id", record.query_id);
  AppendField(&line, "batch_id", record.batch_id);
  AppendField(&line, "tenant_id", record.tenant_id);
  AppendField(&line, "epoch", record.epoch);
  AppendField(&line, "end_ts_us", record.end_ts_us);
  line += ",\"status\":\"";
  line += StatusCodeName(record.status);  // enum names, JSON-safe
  line += '"';
  AppendField(&line, "k", static_cast<uint64_t>(record.k));
  AppendField(&line, "results", static_cast<uint64_t>(record.results));
  AppendField(&line, "queue_s", record.queue_seconds);
  AppendField(&line, "wall_s", record.wall_seconds);
  line += ",\"phases\":{\"probe_s\":";
  AppendNum(&line, record.phases.probe_seconds);
  line += ",\"skyline_s\":";
  AppendNum(&line, record.phases.skyline_seconds);
  line += ",\"upgrade_s\":";
  AppendNum(&line, record.phases.upgrade_seconds);
  line += ",\"prune_s\":";
  AppendNum(&line, record.phases.prune_seconds);
  line += ",\"merge_s\":";
  AppendNum(&line, record.phases.merge_seconds);
  line += ",\"other_s\":";
  AppendNum(&line, record.phases.other_seconds);
  line += '}';
  AppendField(&line, "candidates_evaluated", record.candidates_evaluated);
  AppendField(&line, "candidates_pruned", record.candidates_pruned);
  AppendField(&line, "delta_ops_scanned", record.delta_ops_scanned);
  AppendField(&line, "cache_hits", record.cache_hits);
  AppendField(&line, "cache_misses", record.cache_misses);
  AppendField(&line, "memo_hits", record.memo_hits);
  AppendField(&line, "memo_misses", record.memo_misses);
  AppendField(&line, "shard_count", static_cast<uint64_t>(record.shard_count));
  AppendField(&line, "slowest_shard",
              static_cast<uint64_t>(record.slowest_shard));
  AppendField(&line, "slowest_shard_s", record.slowest_shard_seconds);
  line += ",\"slow\":";
  line += record.slow ? "true" : "false";
  line += '}';
  return line;
}

std::string SystemSampleJson(const SystemSample& sample) {
  std::string line = "{\"type\":\"sample\"";
  AppendField(&line, "ts_us", sample.ts_us);
  AppendField(&line, "epoch", sample.epoch);
  AppendField(&line, "snapshot_age_s", sample.snapshot_age_seconds);
  AppendField(&line, "queue_depth", sample.queue_depth);
  AppendField(&line, "delta_backlog", sample.delta_backlog);
  AppendField(&line, "tombstone_pct", sample.tombstone_pct);
  AppendField(&line, "memo_bytes", sample.memo_bytes);
  AppendField(&line, "rebuilds_published", sample.rebuilds_published);
  AppendField(&line, "patches_published", sample.patches_published);
  AppendField(&line, "live_competitors", sample.live_competitors);
  AppendField(&line, "live_products", sample.live_products);
  line += '}';
  return line;
}

void FlightRecorder::WriteJsonl(std::ostream& out) const {
  // Copy out under the lock, then format/write without it: the stream
  // write may block (disk, pipe), and nothing orders after kObsFlight
  // except the log sink.
  std::vector<QueryFlightRecord> queries = QueryRecords();
  std::vector<SystemSample> samples = Samples();
  const FlightRecorderStats s = stats();
  std::string meta = "{\"type\":\"flight_meta\"";
  AppendField(&meta, "query_ring", static_cast<uint64_t>(options_.query_ring));
  AppendField(&meta, "sample_ring",
              static_cast<uint64_t>(options_.sample_ring));
  AppendField(&meta, "queries_recorded", s.queries_recorded);
  AppendField(&meta, "queries_dropped", s.queries_dropped);
  AppendField(&meta, "samples_recorded", s.samples_recorded);
  AppendField(&meta, "samples_dropped", s.samples_dropped);
  meta += '}';
  out << meta << '\n';
  for (const QueryFlightRecord& record : queries) {
    out << QueryRecordJson(record) << '\n';
  }
  for (const SystemSample& sample : samples) {
    out << SystemSampleJson(sample) << '\n';
  }
}

}  // namespace skyup
