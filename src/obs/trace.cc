#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace skyup {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

// One recorded span. 32 bytes; the name pointer references a string
// literal at the call site (see the header contract).
struct TraceEvent {
  const char* name;
  int64_t start_ns;  // relative to the session epoch
  int64_t dur_ns;
  uint64_t qid;  // 0 = span carried no query id
};

// Per-thread ring buffer. The recording thread is the only writer and
// touches it lock-free; the registry mutex serializes creation, renaming,
// clearing, and export (all off the hot path, and export runs after the
// worker threads of a query have been joined).
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {}

  uint32_t tid;
  std::string name;
  std::vector<TraceEvent> ring;
  uint64_t recorded = 0;  // lifetime total; ring index = recorded % capacity
};

// Sized so a phase-level trace never wraps and a verbose trace of ~60k
// candidates per thread survives intact: 64k events * 32 B = 2 MiB per
// recording thread, allocated only once that thread records its first
// span while tracing is enabled.
constexpr size_t kRingCapacity = size_t{1} << 16;

struct TraceRegistry {
  // Leaf of the global lock order: spans can be recorded (and exported)
  // from any layer, so nothing may be acquired under this.
  Mutex mu SKYUP_ACQUIRED_AFTER(lock_order::kObsRegistry);
  // Owns every buffer ever handed out. Buffers outlive their threads on
  // purpose: ParallelFor workers terminate before the main thread exports
  // the trace, and their spans must survive them.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers SKYUP_GUARDED_BY(mu);
  // Session epoch as steady-clock ticks since its own epoch. Atomic, not
  // guarded: RecordSpan reads it on every span without the registry lock
  // (the previous plain time_point was a data race against
  // EnableTracing's reset).
  std::atomic<int64_t> epoch_ticks{
      SteadyClock::now().time_since_epoch().count()};
};

TraceRegistry& Registry() {
  static TraceRegistry* registry = new TraceRegistry();  // leaked: outlives
  return *registry;                                      // exiting threads
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer* LocalBuffer() {
  if (t_buffer == nullptr) {
    TraceRegistry& reg = Registry();
    MutexLock lock(reg.mu);
    reg.buffers.push_back(
        std::make_unique<ThreadBuffer>(static_cast<uint32_t>(
            reg.buffers.size() + 1)));
    t_buffer = reg.buffers.back().get();
  }
  return t_buffer;
}

// Minimal JSON string escaping for thread names (span names are literals
// under our control, but thread names come from callers).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome trace timestamps are microseconds; keep nanosecond precision in
// the fraction.
void AppendMicros(std::string* out, int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  *out += buf;
}

}  // namespace

void EnableTracing() {
  TraceRegistry& reg = Registry();
  {
    MutexLock lock(reg.mu);
    for (auto& buffer : reg.buffers) buffer->recorded = 0;
    // Relaxed: a span racing Enable is already only approximately
    // attributed (the header documents it as "merely recorded or
    // skipped"); a stale epoch read gives it pre-reset timestamps, the
    // same outcome the enable flag itself permits.
    reg.epoch_ticks.store(
        SteadyClock::now().time_since_epoch().count(),
        std::memory_order_relaxed);  // lint: relaxed-ok (see above)
  }
  internal::g_trace_enabled.store(
      true, std::memory_order_relaxed);  // lint: relaxed-ok (trace.h:59)
}

void DisableTracing() {
  internal::g_trace_enabled.store(
      false, std::memory_order_relaxed);  // lint: relaxed-ok (trace.h:59)
}

void ClearTrace() {
  TraceRegistry& reg = Registry();
  MutexLock lock(reg.mu);
  for (auto& buffer : reg.buffers) buffer->recorded = 0;
}

void SetTraceThreadName(const std::string& name) {
  ThreadBuffer* buffer = LocalBuffer();
  TraceRegistry& reg = Registry();
  MutexLock lock(reg.mu);
  buffer->name = name;
}

TraceStats GetTraceStats() {
  TraceRegistry& reg = Registry();
  MutexLock lock(reg.mu);
  TraceStats stats;
  stats.threads = reg.buffers.size();
  for (const auto& buffer : reg.buffers) {
    const size_t held =
        std::min<uint64_t>(buffer->recorded, kRingCapacity);
    stats.events_buffered += held;
    stats.events_dropped += buffer->recorded - held;
  }
  return stats;
}

namespace internal {

void RecordSpan(const char* name, SteadyClock::time_point start,
                SteadyClock::time_point end, uint64_t qid) {
  ThreadBuffer* buffer = LocalBuffer();
  if (buffer->ring.empty()) buffer->ring.resize(kRingCapacity);
  // Relaxed: see EnableTracing — a racing reset at worst timestamps this
  // one span against the old epoch, which the enable flag already allows.
  const SteadyClock::time_point epoch{SteadyClock::duration{
      Registry().epoch_ticks.load(
          std::memory_order_relaxed)}};  // lint: relaxed-ok (see above)
  // A span opened before EnableTracing() reset the epoch clamps to 0
  // rather than going negative.
  const int64_t start_ns =
      start < epoch
          ? 0
          : std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch)
                .count();
  const int64_t dur_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  TraceEvent& slot = buffer->ring[buffer->recorded % kRingCapacity];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.qid = qid;
  ++buffer->recorded;
}

}  // namespace internal

size_t CollectRecentSpans(size_t max_spans, RecentSpan* out) {
  // Only the calling thread's own buffer: it is the sole writer, so no
  // lock is needed and a worker mid-query can snapshot its own tail.
  const ThreadBuffer* buffer = t_buffer;
  if (buffer == nullptr || buffer->ring.empty() || max_spans == 0) return 0;
  const uint64_t held = std::min<uint64_t>(buffer->recorded, kRingCapacity);
  const uint64_t take = std::min<uint64_t>(held, max_spans);
  size_t count = 0;
  for (uint64_t i = buffer->recorded - take; i < buffer->recorded; ++i) {
    const TraceEvent& event = buffer->ring[i % kRingCapacity];
    out[count++] = RecentSpan{event.name, event.start_ns, event.dur_ns,
                              event.qid};
  }
  return count;
}

void WriteChromeTrace(std::ostream& out) {
  TraceRegistry& reg = Registry();
  MutexLock lock(reg.mu);

  out << "{\"displayTimeUnit\": \"ms\",\n"
      << "\"otherData\": {\"trace_level\": \"" << TraceLevelName()
      << "\"},\n\"traceEvents\": [\n";
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"skyup\"}}";

  for (const auto& buffer : reg.buffers) {
    const std::string label =
        buffer->name.empty() ? "thread " + std::to_string(buffer->tid)
                             : buffer->name;
    out << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": "
        << buffer->tid << ", \"args\": {\"name\": \"" << JsonEscape(label)
        << "\"}}";
    out << ",\n{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": "
        << buffer->tid << ", \"args\": {\"sort_index\": " << buffer->tid
        << "}}";

    const uint64_t held = std::min<uint64_t>(buffer->recorded, kRingCapacity);
    // Oldest-first: when the ring wrapped, the slot at `recorded %
    // capacity` is the oldest surviving event.
    const uint64_t begin = buffer->recorded - held;
    for (uint64_t i = begin; i < buffer->recorded; ++i) {
      const TraceEvent& event = buffer->ring[i % kRingCapacity];
      std::string line = ",\n{\"name\": \"";
      line += event.name;  // literal, no escaping needed
      line += "\", \"cat\": \"skyup\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
      line += std::to_string(buffer->tid);
      line += ", \"ts\": ";
      AppendMicros(&line, event.start_ns);
      line += ", \"dur\": ";
      AppendMicros(&line, event.dur_ns);
      if (event.qid != 0) {
        line += ", \"args\": {\"qid\": ";
        line += std::to_string(event.qid);
        line += "}";
      }
      line += "}";
      out << line;
    }
  }
  out << "\n]}\n";
}

Status WriteChromeTraceFile(const std::string& path) {
  std::ofstream file(path);
  if (!file.good()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  WriteChromeTrace(file);
  file.flush();
  if (!file.good()) {
    return Status::IOError("failed writing trace to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace skyup
