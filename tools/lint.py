#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Scans src/ and fuzz/ (the shipped code; tests may do exact-comparison
gymnastics on purpose) and fails with file:line diagnostics on:

  float-eq       Raw == / != where an operand is a floating literal or a
                 known double field (cost, epsilon). Exact floating
                 comparison is the *defining operation* of the dominance
                 predicates, so core/dominance* is exempt wholesale; every
                 other site must either use an epsilon/std::isnan or carry
                 an explicit `// lint: float-eq-ok (<why>)` annotation —
                 deterministic tie-breaks and differential-oracle equality
                 assertions are the two legitimate reasons seen so far.

  unordered-iter Range-for over a std::unordered_{map,set} variable.
                 Hash-order iteration feeding ordered output is a
                 nondeterminism bug (and varies across libstdc++
                 versions); order-independent reductions may annotate the
                 loop line with `// lint: unordered-iter-ok (<why>)`.

  execstats      The ExecStats tripwire: the number of counter fields in
                 the struct, the number of `add(&field, ...)` merge lines
                 in MergeFrom, and the `N * sizeof(size_t)` multiplier in
                 its static_assert must all agree, so a new counter cannot
                 ship unmerged.

  phasetimings   The same tripwire for obs/phase_timings.h: PhaseTimings
                 double fields vs MergeFrom add() lines vs the
                 `N * sizeof(double)` static_assert multiplier.

Run: python3 tools/lint.py [--root <repo>]
Exit status 0 = clean, 1 = findings (one per line on stdout).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

FLOAT_LITERAL = r"\d+\.\d*(?:[eE][+-]?\d+)?"
KNOWN_DOUBLE_FIELDS = r"(?:cost|epsilon)"
FLOAT_TERM = rf"(?:[\w.\[\]]*\b(?:{FLOAT_LITERAL}|{KNOWN_DOUBLE_FIELDS})\b)"
FLOAT_EQ_RE = re.compile(
    rf"{FLOAT_TERM}\s*(?:==|!=)(?!=)|(?<![=!<>])(?:==|!=)\s*-?{FLOAT_TERM}"
)
FLOAT_EQ_OK = "lint: float-eq-ok"
FLOAT_EQ_EXEMPT_FILES = re.compile(r"core/dominance[^/]*$")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)"
)
UNORDERED_ITER_OK = "lint: unordered-iter-ok"

MERGE_ADD_RE = re.compile(r"^\s*add\(&(\w+),", re.M)

# (rule, header, struct name, field type) — each struct carries the same
# tripwire: fields, MergeFrom add() lines, and the static_assert
# multiplier `N * sizeof(<type>)` must agree.
MERGE_TRIPWIRES = (
    ("execstats", "src/core/upgrade_result.h", "ExecStats", "size_t"),
    ("phasetimings", "src/obs/phase_timings.h", "PhaseTimings", "double"),
    ("servestats", "src/serve/serve_stats.h", "ServeStats", "uint64_t"),
)


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and // comments so operators inside
    them cannot trip the regex rules (annotations are read from the raw
    line before stripping)."""
    out = []
    i = 0
    quote = None
    while i < len(line):
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        if line.startswith("//", i):
            break
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: pathlib.Path, rel: str, findings: list[str]) -> None:
    lines = path.read_text().splitlines()
    unordered_vars: set[str] = set()

    def annotated(lineno: int, marker: str) -> bool:
        # The annotation may sit on the flagged line itself or in a comment
        # on the two lines above it (80-column comments rarely fit inline).
        return any(
            marker in lines[i]
            for i in range(max(0, lineno - 3), lineno)
        )

    for lineno, raw in enumerate(lines, start=1):
        code = strip_comments_and_strings(raw)

        decl = UNORDERED_DECL_RE.search(code)
        if decl:
            unordered_vars.add(decl.group(1))

        if (
            FLOAT_EQ_RE.search(code)
            and not annotated(lineno, FLOAT_EQ_OK)
            and not FLOAT_EQ_EXEMPT_FILES.search(rel)
        ):
            findings.append(
                f"{rel}:{lineno}: [float-eq] raw ==/!= on a floating value;"
                " compare with a tolerance/std::isnan or annotate"
                f" `// {FLOAT_EQ_OK} (<why>)`"
            )

        if unordered_vars and not annotated(lineno, UNORDERED_ITER_OK):
            loop = re.search(r"for\s*\(.*:\s*(\w+)\s*\)", code)
            if loop and loop.group(1) in unordered_vars:
                findings.append(
                    f"{rel}:{lineno}: [unordered-iter] iterating"
                    f" hash-ordered `{loop.group(1)}`; order must not reach"
                    " output — annotate"
                    f" `// {UNORDERED_ITER_OK} (<why>)` if it cannot"
                )


def lint_merge_tripwire(
    root: pathlib.Path,
    findings: list[str],
    rule: str,
    header: str,
    struct_name: str,
    field_type: str,
) -> None:
    path = root / header
    if not path.exists():
        findings.append(f"{header}: [{rule}] file not found")
        return
    text = path.read_text()
    struct = re.search(
        rf"struct {struct_name} \{{(.*?)^\}};", text, re.S | re.M
    )
    if not struct:
        findings.append(f"{header}: [{rule}] struct not found")
        return
    body = struct.group(1)
    fields = re.findall(
        rf"^\s*{field_type}\s+(\w+)\s*=\s*0(?:\.0)?;", body, re.M
    )
    merged = MERGE_ADD_RE.findall(body)
    asserted = re.search(
        rf"sizeof\({struct_name}\)\s*==\s*(\d+)\s*\*"
        rf"\s*sizeof\({field_type}\)",
        body,
    )
    if not asserted:
        findings.append(f"{header}: [{rule}] sizeof static_assert missing")
        return
    n_assert = int(asserted.group(1))
    if not (len(fields) == len(merged) == n_assert):
        findings.append(
            f"{header}: [{rule}] {len(fields)} {field_type} fields,"
            f" {len(merged)} MergeFrom add() lines, static_assert says"
            f" {n_assert} — all three must match"
        )
    if fields != merged:
        missing = set(fields) ^ set(merged)
        if missing:
            findings.append(
                f"{header}: [{rule}] fields vs MergeFrom"
                f" mismatch: {sorted(missing)}"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
    )
    args = parser.parse_args()
    root = args.root

    findings: list[str] = []
    for subdir in ("src", "fuzz"):
        for path in sorted((root / subdir).rglob("*")):
            if path.suffix in (".h", ".cc"):
                lint_file(path, path.relative_to(root).as_posix(), findings)
    for rule, header, struct_name, field_type in MERGE_TRIPWIRES:
        lint_merge_tripwire(
            root, findings, rule, header, struct_name, field_type
        )

    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
