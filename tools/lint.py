#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Scans src/ and fuzz/ (the shipped code; tests may do exact-comparison
gymnastics on purpose) and fails with file:line diagnostics on:

  float-eq       Raw == / != where an operand is a floating literal or a
                 known double field (cost, epsilon). Exact floating
                 comparison is the *defining operation* of the dominance
                 predicates, so core/dominance* is exempt wholesale; every
                 other site must either use an epsilon/std::isnan or carry
                 an explicit `// lint: float-eq-ok (<why>)` annotation —
                 deterministic tie-breaks and differential-oracle equality
                 assertions are the two legitimate reasons seen so far.

  unordered-iter Range-for over a std::unordered_{map,set} variable.
                 Hash-order iteration feeding ordered output is a
                 nondeterminism bug (and varies across libstdc++
                 versions); order-independent reductions may annotate the
                 loop line with `// lint: unordered-iter-ok (<why>)`.

  execstats      The ExecStats tripwire: the number of counter fields in
                 the struct, the number of `add(&field, ...)` merge lines
                 in MergeFrom, and the `N * sizeof(size_t)` multiplier in
                 its static_assert must all agree, so a new counter cannot
                 ship unmerged.

  phasetimings   The same tripwire for obs/phase_timings.h: PhaseTimings
                 double fields vs MergeFrom add() lines vs the
                 `N * sizeof(double)` static_assert multiplier.

  raw-mutex      std::mutex / lock_guard / unique_lock / shared_mutex /
                 condition_variable outside src/util/mutex.h. All
                 synchronization goes through the capability-annotated
                 wrappers (Mutex, MutexLock, ReaderLock, WriterLock,
                 CondVar) so Clang Thread Safety Analysis sees the whole
                 concurrent surface; a raw primitive is a hole in the
                 analysis. Annotate `// lint: raw-mutex-ok (<why>)` for
                 the (so far hypothetical) site that cannot use them.

  guarded-by     A wrapper Mutex/SharedMutex member declared in a file
                 where no SKYUP_GUARDED_BY(...) names it: a mutex that
                 guards nothing the analysis can check is usually a
                 mutex whose data lost its annotations. Function-local
                 mutexes (GUARDED_BY only applies to members/globals)
                 annotate `// lint: guarded-by-ok (<why>)`.

  relaxed        std::memory_order_relaxed without an adjacent
                 `// lint: relaxed-ok (<why>)`. Relaxed atomics are the
                 one concurrency idiom neither the wrappers nor TSA can
                 vouch for, so every site carries its own proof sketch
                 (see docs/algorithms.md, "Static concurrency
                 analysis", for the current allowlist).

  tsa-escape     SKYUP_NO_THREAD_SAFETY_ANALYSIS without an adjacent
                 `// tsa: <why>` comment. The escape hatch silences the
                 analysis for a whole function; the comment is the
                 reviewable justification (currently one site:
                 DeltaLog::Append's write-ahead hook contract).

  trace-span     SKYUP_TRACE_SPAN / _SPAN_Q / _SPAN_VERBOSE whose name
                 argument is not a string literal on the same line. The
                 trace ring stores the name as a borrowed `const char*`
                 without copying, so only a literal (static storage
                 duration) is safe — a stack buffer or std::string
                 .c_str() dangles by the time the Chrome-trace exporter
                 reads it. Span names are also a stable grep/tooling
                 surface (the flight recorder's slow-query log keys on
                 them), so they must be constants anyway. Annotate
                 `// lint: trace-span-literal-ok (<why>)` for a site
                 that can prove static storage another way.

Run: python3 tools/lint.py [--root <repo>]
Exit status 0 = clean, 1 = findings (one per line on stdout).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

FLOAT_LITERAL = r"\d+\.\d*(?:[eE][+-]?\d+)?"
KNOWN_DOUBLE_FIELDS = r"(?:cost|epsilon)"
FLOAT_TERM = rf"(?:[\w.\[\]]*\b(?:{FLOAT_LITERAL}|{KNOWN_DOUBLE_FIELDS})\b)"
FLOAT_EQ_RE = re.compile(
    rf"{FLOAT_TERM}\s*(?:==|!=)(?!=)|(?<![=!<>])(?:==|!=)\s*-?{FLOAT_TERM}"
)
FLOAT_EQ_OK = "lint: float-eq-ok"
FLOAT_EQ_EXEMPT_FILES = re.compile(r"core/dominance[^/]*$")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)"
)
UNORDERED_ITER_OK = "lint: unordered-iter-ok"

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
RAW_MUTEX_OK = "lint: raw-mutex-ok"
# The wrapper header is the one place the raw primitives belong.
SYNC_WRAPPER_FILE = "src/util/mutex.h"

# A capability-annotated mutex member/global: optionally `mutable`, the
# wrapper type, a name, then either `;` or an SKYUP_ attribute
# (ACQUIRED_BEFORE/AFTER sandwiches). References (`Mutex&`) and the
# non-Clang `using Mutex = ...` aliases do not match.
GUARDED_BY_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:skyup::)?(?:Shared)?Mutex\s+(\w+)\s*(?=;|SKYUP_)"
)
GUARDED_BY_OK = "lint: guarded-by-ok"

RELAXED_RE = re.compile(r"std::memory_order_relaxed\b")
RELAXED_OK = "lint: relaxed-ok"

TSA_ESCAPE_RE = re.compile(r"SKYUP_NO_THREAD_SAFETY_ANALYSIS\b")
TSA_ESCAPE_OK = "// tsa:"
# The macro's own definition (and doc) lives here.
TSA_MACRO_FILE = "src/util/thread_annotations.h"

# A span macro invocation whose first argument does not start with a
# string literal. Matched on comment/string-stripped code, where a
# literal survives as its opening quote.
TRACE_SPAN_RE = re.compile(
    r"SKYUP_TRACE_SPAN(?:_Q|_VERBOSE)?\s*\((?!\s*\")"
)
TRACE_SPAN_OK = "lint: trace-span-literal-ok"
# The macros' own definitions forward a `name` parameter.
TRACE_MACRO_FILE = "src/obs/trace.h"

MERGE_ADD_RE = re.compile(r"^\s*add\(&(\w+),", re.M)

# (rule, header, struct name, field type) — each struct carries the same
# tripwire: fields, MergeFrom add() lines, and the static_assert
# multiplier `N * sizeof(<type>)` must agree.
MERGE_TRIPWIRES = (
    ("execstats", "src/core/upgrade_result.h", "ExecStats", "size_t"),
    ("phasetimings", "src/obs/phase_timings.h", "PhaseTimings", "double"),
    ("servestats", "src/serve/serve_stats.h", "ServeStats", "uint64_t"),
)


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and // comments so operators inside
    them cannot trip the regex rules (annotations are read from the raw
    line before stripping)."""
    out = []
    i = 0
    quote = None
    while i < len(line):
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        if line.startswith("//", i):
            break
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path: pathlib.Path, rel: str, findings: list[str]) -> None:
    text = path.read_text()
    lines = text.splitlines()
    unordered_vars: set[str] = set()
    # (lineno, name) of wrapper mutex declarations, checked for
    # SKYUP_GUARDED_BY coverage after the whole file has been read.
    mutex_decls: list[tuple[int, str]] = []

    def annotated(lineno: int, marker: str) -> bool:
        # The annotation may sit on the flagged line itself or in a comment
        # on the two lines above it (80-column comments rarely fit inline).
        return any(
            marker in lines[i]
            for i in range(max(0, lineno - 3), lineno)
        )

    for lineno, raw in enumerate(lines, start=1):
        code = strip_comments_and_strings(raw)

        decl = UNORDERED_DECL_RE.search(code)
        if decl:
            unordered_vars.add(decl.group(1))

        if (
            FLOAT_EQ_RE.search(code)
            and not annotated(lineno, FLOAT_EQ_OK)
            and not FLOAT_EQ_EXEMPT_FILES.search(rel)
        ):
            findings.append(
                f"{rel}:{lineno}: [float-eq] raw ==/!= on a floating value;"
                " compare with a tolerance/std::isnan or annotate"
                f" `// {FLOAT_EQ_OK} (<why>)`"
            )

        if unordered_vars and not annotated(lineno, UNORDERED_ITER_OK):
            loop = re.search(r"for\s*\(.*:\s*(\w+)\s*\)", code)
            if loop and loop.group(1) in unordered_vars:
                findings.append(
                    f"{rel}:{lineno}: [unordered-iter] iterating"
                    f" hash-ordered `{loop.group(1)}`; order must not reach"
                    " output — annotate"
                    f" `// {UNORDERED_ITER_OK} (<why>)` if it cannot"
                )

        if (
            RAW_MUTEX_RE.search(code)
            and rel != SYNC_WRAPPER_FILE
            and not annotated(lineno, RAW_MUTEX_OK)
        ):
            findings.append(
                f"{rel}:{lineno}: [raw-mutex] raw standard-library"
                " synchronization; use the annotated wrappers in"
                " util/mutex.h (Mutex, MutexLock, ReaderLock, WriterLock,"
                f" CondVar) or annotate `// {RAW_MUTEX_OK} (<why>)`"
            )

        decl = GUARDED_BY_DECL_RE.search(code)
        if decl and rel != SYNC_WRAPPER_FILE:
            mutex_decls.append((lineno, decl.group(1)))

        if RELAXED_RE.search(code) and not annotated(lineno, RELAXED_OK):
            findings.append(
                f"{rel}:{lineno}: [relaxed] memory_order_relaxed without"
                " its proof sketch; annotate"
                f" `// {RELAXED_OK} (<why>)` on or above the line"
            )

        if (
            TSA_ESCAPE_RE.search(code)
            and rel != TSA_MACRO_FILE
            and not annotated(lineno, TSA_ESCAPE_OK)
        ):
            findings.append(
                f"{rel}:{lineno}: [tsa-escape]"
                " SKYUP_NO_THREAD_SAFETY_ANALYSIS without a"
                f" `{TSA_ESCAPE_OK} <why>` justification on or above the"
                " line"
            )

        if (
            TRACE_SPAN_RE.search(code)
            and rel != TRACE_MACRO_FILE
            and not annotated(lineno, TRACE_SPAN_OK)
        ):
            findings.append(
                f"{rel}:{lineno}: [trace-span] span name is not a string"
                " literal; the trace ring borrows the pointer, so a"
                " non-literal dangles — use a literal or annotate"
                f" `// {TRACE_SPAN_OK} (<why>)`"
            )

    for lineno, name in mutex_decls:
        if annotated(lineno, GUARDED_BY_OK):
            continue
        covered = re.search(
            rf"SKYUP_(?:PT_)?GUARDED_BY\([^)]*\b{re.escape(name)}\b", text
        )
        if not covered:
            findings.append(
                f"{rel}:{lineno}: [guarded-by] mutex `{name}` guards no"
                " SKYUP_GUARDED_BY member in this file; annotate the data"
                f" it protects or mark `// {GUARDED_BY_OK} (<why>)`"
            )


def lint_merge_tripwire(
    root: pathlib.Path,
    findings: list[str],
    rule: str,
    header: str,
    struct_name: str,
    field_type: str,
) -> None:
    path = root / header
    if not path.exists():
        findings.append(f"{header}: [{rule}] file not found")
        return
    text = path.read_text()
    struct = re.search(
        rf"struct {struct_name} \{{(.*?)^\}};", text, re.S | re.M
    )
    if not struct:
        findings.append(f"{header}: [{rule}] struct not found")
        return
    body = struct.group(1)
    fields = re.findall(
        rf"^\s*{field_type}\s+(\w+)\s*=\s*0(?:\.0)?;", body, re.M
    )
    merged = MERGE_ADD_RE.findall(body)
    asserted = re.search(
        rf"sizeof\({struct_name}\)\s*==\s*(\d+)\s*\*"
        rf"\s*sizeof\({field_type}\)",
        body,
    )
    if not asserted:
        findings.append(f"{header}: [{rule}] sizeof static_assert missing")
        return
    n_assert = int(asserted.group(1))
    if not (len(fields) == len(merged) == n_assert):
        findings.append(
            f"{header}: [{rule}] {len(fields)} {field_type} fields,"
            f" {len(merged)} MergeFrom add() lines, static_assert says"
            f" {n_assert} — all three must match"
        )
    if fields != merged:
        missing = set(fields) ^ set(merged)
        if missing:
            findings.append(
                f"{header}: [{rule}] fields vs MergeFrom"
                f" mismatch: {sorted(missing)}"
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
    )
    args = parser.parse_args()
    root = args.root

    findings: list[str] = []
    for subdir in ("src", "fuzz"):
        for path in sorted((root / subdir).rglob("*")):
            if path.suffix in (".h", ".cc"):
                lint_file(path, path.relative_to(root).as_posix(), findings)
    for rule, header, struct_name, field_type in MERGE_TRIPWIRES:
        lint_merge_tripwire(
            root, findings, rule, header, struct_name, field_type
        )

    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
