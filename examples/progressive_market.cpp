// Progressive top-k at market scale: a large synthetic market (the paper's
// Section IV-C layout) where the analyst wants answers *now* — the join
// cursor streams the cheapest upgrades one by one while probing would have
// to grind through the whole catalog first.
//
// Demonstrates: the streaming JoinCursor, lower-bound selection, the sound
// bound mode, and a live comparison of work done vs catalog size.

#include <cstdio>
#include <string>
#include <vector>

#include "core/join.h"
#include "core/planner.h"
#include "data/generator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace skyup;

  size_t market_size = 200000;
  size_t catalog_size = 20000;
  if (argc > 1) market_size = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) catalog_size = static_cast<size_t>(std::atoll(argv[2]));

  std::printf("Generating anti-correlated market |P|=%zu, catalog |T|=%zu, "
              "d=3...\n",
              market_size, catalog_size);
  Result<Dataset> market = GenerateCompetitors(
      market_size, 3, Distribution::kAntiCorrelated, 1);
  Result<Dataset> catalog =
      GenerateProducts(catalog_size, 3, Distribution::kAntiCorrelated, 2);
  if (!market.ok() || !catalog.ok()) return 1;

  ProductCostFunction cost_fn = ProductCostFunction::ReciprocalSum(3, 1e-3);
  PlannerOptions options;
  options.lower_bound = LowerBoundKind::kConservative;
  options.bound_mode = BoundMode::kSound;  // provably exact ordering
  Timer build_timer;
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(*market, *catalog, cost_fn, options);
  if (!planner.ok()) {
    std::fprintf(stderr, "%s\n", planner.status().ToString().c_str());
    return 1;
  }
  std::printf("Indexes built in %.0f ms\n", build_timer.ElapsedMillis());

  Result<JoinCursor> cursor = planner->OpenJoinCursor();
  if (!cursor.ok()) return 1;

  std::printf("\nStreaming the 10 cheapest upgrades:\n");
  std::printf("%-5s %-10s %-12s %-12s %-14s\n", "rank", "product", "cost",
              "elapsed(ms)", "exact-costs-computed");
  Timer timer;
  double first_cost = 0.0;
  for (int rank = 1; rank <= 10; ++rank) {
    auto r = cursor->Next();
    if (!r.has_value()) break;
    if (rank == 1) first_cost = r->cost;
    std::printf("%-5d %-10lld %-12.4f %-12.1f %zu / %zu\n", rank,
                static_cast<long long>(r->product_id), r->cost,
                timer.ElapsedMillis(), cursor->stats().products_processed,
                catalog_size);
  }

  std::printf("\nFor contrast, improved probing must process every product "
              "before it can emit rank 1:\n");
  Timer probing_timer;
  Result<std::vector<UpgradeResult>> probing =
      planner->TopK(10, Algorithm::kImprovedProbing);
  if (!probing.ok()) return 1;
  std::printf("improved probing: %.0f ms for the same top-10\n",
              probing_timer.ElapsedMillis());
  std::printf("head-of-ranking cost: join %.4f vs probing %.4f (%s)\n",
              first_cost, (*probing)[0].cost,
              std::abs(first_cost - (*probing)[0].cost) < 1e-9
                  ? "identical"
                  : "MISMATCH");
  return 0;
}
