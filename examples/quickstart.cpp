// Quickstart: the paper's motivating cell-phone example (Tables I and II).
//
// A manufacturer owns four phones (set T), all dominated by competitor
// phones (set P). Which one is the cheapest to upgrade into a competitive
// product, and what should its new spec be?
//
// Demonstrates: mixed preference directions (lighter is better, longer
// standby / more pixels are better), the planner facade, and reading an
// upgrade plan back in original units.

#include <cstdio>
#include <string>
#include <vector>

#include "core/planner.h"
#include "data/normalize.h"

namespace {

void PrintPhone(const char* name, const std::vector<double>& raw) {
  std::printf("  %-8s %6.0f g   %5.0f h standby   %.1f Mpx\n", name, raw[0],
              raw[1], raw[2]);
}

}  // namespace

int main() {
  using namespace skyup;

  // Table I — the competitor market (weight g, standby h, camera Mpx).
  Dataset raw_competitors(3);
  raw_competitors.Add({140, 200, 2.0});  // phone 1
  raw_competitors.Add({180, 150, 3.0});  // phone 2
  raw_competitors.Add({100, 160, 3.0});  // phone 3
  raw_competitors.Add({180, 180, 3.0});  // phone 4
  raw_competitors.Add({120, 180, 4.0});  // phone 5
  raw_competitors.Add({150, 150, 3.0});  // phone 6

  // Table II — our uncompetitive catalog.
  Dataset raw_products(3);
  const char* names[] = {"phone A", "phone B", "phone C", "phone D"};
  raw_products.Add({150, 120, 2.0});
  raw_products.Add({180, 130, 1.0});
  raw_products.Add({180, 120, 3.0});
  raw_products.Add({220, 180, 2.0});

  std::printf("Competitor market (Table I):\n");
  for (size_t i = 0; i < raw_competitors.size(); ++i) {
    PrintPhone(("phone " + std::to_string(i + 1)).c_str(),
               raw_competitors.Materialize(static_cast<PointId>(i)).coords);
  }
  std::printf("Our catalog (Table II):\n");
  for (size_t i = 0; i < raw_products.size(); ++i) {
    PrintPhone(names[i],
               raw_products.Materialize(static_cast<PointId>(i)).coords);
  }

  // Map everything into the canonical unit space: minimize weight,
  // maximize standby time and camera resolution (paper footnote 1).
  Result<Normalizer> normalizer = Normalizer::FitAll(
      {&raw_competitors, &raw_products},
      {Direction::kMinimize, Direction::kMaximize, Direction::kMaximize});
  if (!normalizer.ok()) {
    std::fprintf(stderr, "%s\n", normalizer.status().ToString().c_str());
    return 1;
  }

  // The paper's experimental cost model: each attribute gets more
  // expensive the closer it moves to the best end of its range.
  ProductCostFunction cost_fn = ProductCostFunction::ReciprocalSum(3, 1e-2);

  Result<UpgradePlanner> planner = UpgradePlanner::Create(
      normalizer->Normalize(raw_competitors),
      normalizer->Normalize(raw_products), cost_fn);
  if (!planner.ok()) {
    std::fprintf(stderr, "%s\n", planner.status().ToString().c_str());
    return 1;
  }

  Result<std::vector<UpgradeResult>> ranking =
      planner->TopK(raw_products.size(), Algorithm::kJoin);
  if (!ranking.ok()) {
    std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
    return 1;
  }

  std::printf("\nUpgrade ranking (cheapest first, join algorithm):\n");
  for (size_t rank = 0; rank < ranking->size(); ++rank) {
    const UpgradeResult& r = (*ranking)[rank];
    const std::vector<double> upgraded =
        normalizer->Denormalize(r.upgraded);
    std::printf("#%zu %s — upgrade cost %.3f\n", rank + 1,
                names[r.product_id], r.cost);
    PrintPhone("   now", raw_products.Materialize(r.product_id).coords);
    PrintPhone("   new", upgraded);
  }
  std::printf(
      "\nThe top phone is the cheapest to make non-dominated by every\n"
      "competitor in Table I under the reciprocal cost model.\n");
  return 0;
}
