// Wine-manufacturer scenario (the paper's Section IV-B): given the market
// of white wines described by chlorides, sulphates, and total sulfur
// dioxide, which of our 1,000 wines can be reformulated most cheaply into
// products no competitor dominates?
//
// Demonstrates: the synthetic UCI-wine substitute, Table III attribute
// combinations, algorithm cross-checking, and execution statistics.

#include <cstdio>
#include <string>
#include <vector>

#include "core/planner.h"
#include "data/wine.h"

int main() {
  using namespace skyup;

  Result<Dataset> wine = SynthesizeWine();  // 4,898 tuples, 3 attributes
  if (!wine.ok()) return 1;

  std::printf("Synthesized wine market: %zu tuples\n", wine->size());
  std::printf("%-8s %-14s %-14s %-10s %-10s\n", "combo", "best wine id",
              "upgrade cost", "time", "algorithms agree");

  for (const auto& combo : WineAttributeCombinations()) {
    Result<Dataset> reduced = WineSubset(*wine, combo);
    if (!reduced.ok()) return 1;
    Result<WineSplit> split = SplitWine(*reduced, 1000);
    if (!split.ok()) return 1;

    ProductCostFunction cost_fn =
        ProductCostFunction::ReciprocalSum(combo.size(), 1e-3);
    Result<UpgradePlanner> planner = UpgradePlanner::Create(
        split->competitors, split->products, cost_fn);
    if (!planner.ok()) return 1;

    ExecStats stats;
    Result<std::vector<UpgradeResult>> join =
        planner->TopK(1, Algorithm::kJoin, &stats);
    Result<std::vector<UpgradeResult>> probing =
        planner->TopK(1, Algorithm::kImprovedProbing);
    if (!join.ok() || !probing.ok()) return 1;

    const bool agree =
        std::abs((*join)[0].cost - (*probing)[0].cost) < 1e-9;
    std::printf("%-8s %-14lld %-14.4f %-10s %s\n",
                WineComboLabel(combo).c_str(),
                static_cast<long long>((*join)[0].product_id),
                (*join)[0].cost, "-", agree ? "yes" : "NO");
    std::printf("         join stats: %zu heap pops, %zu products probed "
                "(of %zu), %zu LBC evaluations\n",
                stats.heap_pops, stats.products_processed,
                split->products.size(), stats.lbc_evaluations);
  }

  // Progressive consumption: stream the ten cheapest reformulations for
  // the full c,s,t combination without ranking all 1,000 wines.
  Result<Dataset> reduced = WineSubset(
      *wine, {WineAttr::kChlorides, WineAttr::kSulphates,
              WineAttr::kTotalSulfurDioxide});
  if (!reduced.ok()) return 1;
  Result<WineSplit> split = SplitWine(*reduced, 1000);
  if (!split.ok()) return 1;
  ProductCostFunction cost_fn = ProductCostFunction::ReciprocalSum(3, 1e-3);
  Result<UpgradePlanner> planner =
      UpgradePlanner::Create(split->competitors, split->products, cost_fn);
  if (!planner.ok()) return 1;
  Result<JoinCursor> cursor = planner->OpenJoinCursor();
  if (!cursor.ok()) return 1;

  std::printf("\nTen cheapest reformulations (c,s,t), streamed:\n");
  for (int i = 0; i < 10; ++i) {
    auto r = cursor->Next();
    if (!r.has_value()) break;
    std::printf("  wine %-5lld cost %.4f  ->  (%.3f, %.3f, %.3f) "
                "normalized\n",
                static_cast<long long>(r->product_id), r->cost,
                r->upgraded[0], r->upgraded[1], r->upgraded[2]);
  }
  std::printf("cursor stats: %zu of %zu products needed exact costs\n",
              cursor->stats().products_processed, split->products.size());
  return 0;
}
