// Hotel chain scenario from the paper's introduction: a chain wants to
// renovate the hotels that need the *lowest* renovation budget to become
// competitive against the local market.
//
// Demonstrates: weighted cost integration (F_wgt — renovating room size is
// far more expensive per unit than raising service scores), per-attribute
// cost shapes, monotonicity validation, and the single-set variant
// (ranking the chain's own portfolio against itself).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "data/generator.h"
#include "data/normalize.h"
#include "util/random.h"

namespace {

using namespace skyup;

// Attributes: nightly price ($, minimize), distance to center (km,
// minimize), room size (m^2, maximize), review score (1-10, maximize).
Dataset MakeMarket(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset market(4);
  for (size_t i = 0; i < n; ++i) {
    const double quality = rng.NextDouble();  // hidden quality driver
    market.Add({
        70.0 + 180.0 * quality + 25.0 * rng.NextGaussian() * 0.3,
        0.3 + 9.0 * (1.0 - quality) * rng.NextDouble(),
        14.0 + 40.0 * quality + 4.0 * rng.NextGaussian() * 0.4,
        4.0 + 5.5 * quality + 0.5 * rng.NextGaussian() * 0.5,
    });
  }
  return market;
}

}  // namespace

int main() {
  const size_t kMarketSize = 4000;
  Dataset market = MakeMarket(kMarketSize, 2024);

  // The chain's own portfolio: eight mid-tier hotels.
  Dataset chain(4);
  const char* names[] = {"Harbor", "Central", "Garden", "Summit",
                         "Station", "Lakeside", "Plaza", "Airport"};
  chain.Add({150, 2.0, 22, 6.1});
  chain.Add({180, 0.8, 19, 6.5});
  chain.Add({120, 5.5, 26, 5.9});
  chain.Add({210, 3.1, 24, 6.8});
  chain.Add({140, 1.9, 17, 5.2});
  chain.Add({160, 6.0, 30, 6.0});
  chain.Add({250, 0.4, 28, 7.2});
  chain.Add({110, 9.0, 20, 5.0});

  Result<Normalizer> normalizer = Normalizer::FitAll(
      {&market, &chain},
      {Direction::kMinimize, Direction::kMinimize, Direction::kMaximize,
       Direction::kMaximize});
  if (!normalizer.ok()) return 1;

  // Renovation economics: shrinking the price or moving closer to the
  // center is brutally expensive (power-law), growing rooms is costly,
  // lifting review scores (staff, amenities) is the cheapest lever.
  std::vector<std::shared_ptr<const AttributeCostFunction>> per_dim = {
      std::make_shared<const PowerCost>(1.0, 1.5, 0.02),   // price
      std::make_shared<const PowerCost>(1.0, 1.2, 0.05),   // distance
      std::make_shared<const ReciprocalCost>(0.05),        // room size
      std::make_shared<const LinearCost>(3.0, 2.5),        // review score
  };
  Result<ProductCostFunction> cost_fn = ProductCostFunction::WeightedSum(
      per_dim, {3.0, 5.0, 2.0, 1.0});
  if (!cost_fn.ok()) {
    std::fprintf(stderr, "%s\n", cost_fn.status().ToString().c_str());
    return 1;
  }

  PlannerOptions options;
  options.validate_monotonicity = true;  // reject a broken cost model early
  options.lower_bound = LowerBoundKind::kAggressive;
  Result<UpgradePlanner> planner = UpgradePlanner::Create(
      normalizer->Normalize(market), normalizer->Normalize(chain),
      *cost_fn, options);
  if (!planner.ok()) {
    std::fprintf(stderr, "planner: %s\n",
                 planner.status().ToString().c_str());
    return 1;
  }

  Result<std::vector<UpgradeResult>> ranking =
      planner->TopK(chain.size(), Algorithm::kJoin);
  if (!ranking.ok()) return 1;

  std::printf("Renovation priorities against a %zu-hotel market:\n\n",
              kMarketSize);
  std::printf("%-10s %-12s %-10s %s\n", "hotel", "status", "budget",
              "plan (price, km, m^2, score)");
  for (const UpgradeResult& r : *ranking) {
    const std::vector<double> plan = normalizer->Denormalize(r.upgraded);
    if (r.already_competitive) {
      std::printf("%-10s %-12s %-10s —\n", names[r.product_id],
                  "competitive", "0");
    } else {
      char budget[32];
      std::snprintf(budget, sizeof(budget), "%.2f", r.cost);
      std::printf("%-10s %-12s %-10s $%.0f, %.1f km, %.0f m^2, %.1f\n",
                  names[r.product_id], "dominated", budget, plan[0],
                  plan[1], plan[2], plan[3]);
    }
  }

  // The single-set variant: how would the portfolio rank against itself
  // (which of our own hotels are internally uncompetitive)?
  Result<std::vector<UpgradeResult>> internal = UpgradePlanner::TopKWithinSet(
      normalizer->Normalize(chain), *cost_fn, chain.size());
  if (!internal.ok()) return 1;
  std::printf("\nWithin the chain itself (single-set variant):\n");
  for (const UpgradeResult& r : *internal) {
    std::printf("  %-10s %s\n", names[r.product_id],
                r.already_competitive ? "on the internal frontier"
                                      : "dominated by a sibling hotel");
  }
  return 0;
}
